"""End-to-end integration: the pipeline's fences restore SC behaviour.

This is the operational statement of the paper's guarantee: for
well-synchronized (legacy DRF) programs, running the *fenced* program
on relaxed hardware produces exactly the SC outcomes of the original —
data reads included. Verified by exhaustive SC/TSO exploration on
litmus-scale programs, for all three pipeline variants.
"""

import pytest

from repro.core.pipeline import PipelineVariant, place_fences
from repro.frontend import compile_source
from repro.memmodel.litmus import LITMUS_TESTS
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer

ALL_VARIANTS = list(PipelineVariant)

WELL_SYNCED = [name for name, t in LITMUS_TESTS.items() if t.well_synchronized]


@pytest.mark.parametrize("variant", ALL_VARIANTS)
@pytest.mark.parametrize("name", WELL_SYNCED)
def test_fenced_drf_litmus_has_sc_behaviour(name, variant):
    test = LITMUS_TESTS[name]
    fenced = test.compile()
    place_fences(fenced, variant)
    sc = SCExplorer(test.compile()).explore()
    tso = TSOExplorer(fenced).explore()
    assert sc.complete and tso.complete
    assert tso.observation_sets() == sc.observation_sets(), name


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_fenced_dekker_mutual_exclusion(variant):
    # Under TSO with pipeline fences, at most one thread enters.
    test = LITMUS_TESTS["dekker"]
    fenced = test.compile()
    place_fences(fenced, variant)
    tso = TSOExplorer(fenced).explore()
    for outcome in tso.outcomes:
        entries = [v for (_, label, v) in outcome.observations if label == "in"]
        assert len(entries) <= 1, outcome


SMALL_SPINLOCK = """
global lock;
global data;

fn worker(tid) {
  local old = 1;
  old = cas(&lock, 0, 1);
  while (old != 0) { old = cas(&lock, 0, 1); }
  data = data + 1;
  lock = 0;
}

fn checker(tid) {
  local seen = 0;
  local old = 1;
  old = cas(&lock, 0, 1);
  while (old != 0) { old = cas(&lock, 0, 1); }
  seen = data;
  lock = 0;
  observe("seen", seen);
}

thread worker(0);
thread checker(1);
"""


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_cas_lock_program_sc_preserved(variant):
    fenced = compile_source(SMALL_SPINLOCK, "lock")
    place_fences(fenced, variant)
    sc = SCExplorer(compile_source(SMALL_SPINLOCK, "lock")).explore()
    tso = TSOExplorer(fenced).explore()
    assert tso.observation_sets() == sc.observation_sets()


HANDOFF = """
global mailbox[4];
global ready;

fn sender(tid) {
  mailbox[0] = 10;
  mailbox[1] = 20;
  mailbox[2] = 30;
  ready = 1;
}

fn receiver(tid) {
  local sum = 0;
  while (ready == 0) { }
  sum = mailbox[0] + mailbox[1] + mailbox[2];
  observe("sum", sum);
}

thread sender(0);
thread receiver(1);
"""


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_multiword_handoff_sc_preserved(variant):
    fenced = compile_source(HANDOFF, "handoff")
    place_fences(fenced, variant)
    sc = SCExplorer(compile_source(HANDOFF, "handoff")).explore()
    tso = TSOExplorer(fenced).explore()
    assert tso.observation_sets() == sc.observation_sets()
    # and the only outcome is the complete message
    assert sc.observation_sets() == {((1, "sum", 60),)}


def test_control_cheaper_than_pensieve_on_handoff():
    pen = compile_source(HANDOFF, "h1")
    ctl = compile_source(HANDOFF, "h2")
    pen_analysis = place_fences(pen, PipelineVariant.PENSIEVE)
    ctl_analysis = place_fences(ctl, PipelineVariant.CONTROL)
    assert ctl_analysis.full_fence_count <= pen_analysis.full_fence_count


def test_annotation_route_matches_fence_route():
    # Alternative application (Section 1.3): annotations name the same
    # acquires that drove the fence placement.
    from repro.core.annotations import suggest_annotations
    from repro.core.pipeline import analyze_program

    program = LITMUS_TESTS["dekker"].compile()
    analysis = analyze_program(program, PipelineVariant.CONTROL)
    annotations = suggest_annotations(analysis)
    acquire_count = sum(1 for a in annotations if a.order == "acquire")
    assert acquire_count == analysis.total_sync_reads


MCS_SMALL = """
global int mcs_nodes[4];
global int mcs_tail;
global int shared;

fn cs(me) {
  local mynode = 0;
  local pred = 0;
  local nxt = 0;
  local won = 0;
  mynode = &mcs_nodes[2 * me];
  mcs_nodes[2 * me + 1] = 0;
  pred = xchg(&mcs_tail, mynode);
  if (pred != 0) {
    *mynode = 1;
    *(pred + 1) = mynode;
    while (*mynode == 1) { }
  }
  shared = shared + 1;
  nxt = *(mynode + 1);
  if (nxt == 0) {
    won = cas(&mcs_tail, mynode, 0);
    if (won != mynode) {
      while (*(mynode + 1) == 0) { }
      nxt = *(mynode + 1);
      *nxt = 0;
    }
  } else {
    *nxt = 0;
  }
}

thread cs(0);
thread cs(1);
"""


@pytest.mark.parametrize("variant", [PipelineVariant.CONTROL, PipelineVariant.ADDRESS_CONTROL])
def test_mcs_lock_sc_preserved(variant):
    fenced = compile_source(MCS_SMALL, "mcs")
    place_fences(fenced, variant)
    sc = SCExplorer(compile_source(MCS_SMALL, "mcs"), max_states=2_000_000).explore()
    tso = TSOExplorer(fenced, max_states=2_000_000).explore()
    assert sc.complete and tso.complete
    sc_finals = {o.globals_dict()["shared"] for o in sc.outcomes}
    tso_finals = {o.globals_dict()["shared"] for o in tso.outcomes}
    assert sc_finals == tso_finals == {2}
