"""Textual IR dumping, for debugging and golden tests."""

from __future__ import annotations

from repro.ir.function import Function, Program
from repro.ir.instructions import (
    Alloca,
    AtomicAdd,
    AtomicXchg,
    BinOp,
    Br,
    Call,
    Cmp,
    CmpXchg,
    Fence,
    Gep,
    Instruction,
    Jump,
    Load,
    Observe,
    Ret,
    Store,
)


def format_instruction(inst: Instruction) -> str:
    """One-line textual form of an instruction."""
    if isinstance(inst, Alloca):
        suffix = f" ; {inst.var_name}" if inst.var_name else ""
        return f"{inst.dest} = alloca {inst.size}{suffix}"
    if isinstance(inst, Load):
        return f"{inst.dest} = {inst.mnemonic()} {inst.addr}"
    if isinstance(inst, Store):
        return f"{inst.mnemonic()} {inst.addr}, {inst.value}"
    if isinstance(inst, BinOp):
        return f"{inst.dest} = {inst.lhs} {inst.op} {inst.rhs}"
    if isinstance(inst, Cmp):
        return f"{inst.dest} = {inst.lhs} {inst.op} {inst.rhs}"
    if isinstance(inst, Gep):
        return f"{inst.dest} = gep {inst.base}, {inst.offset}"
    if isinstance(inst, Br):
        return f"br {inst.cond}, {inst.true_label}, {inst.false_label}"
    if isinstance(inst, Jump):
        return f"jump {inst.target}"
    if isinstance(inst, Ret):
        return "ret" if inst.value is None else f"ret {inst.value}"
    if isinstance(inst, Call):
        args = ", ".join(str(a) for a in inst.args)
        prefix = f"{inst.dest} = " if inst.dest is not None else ""
        return f"{prefix}call @{inst.callee}({args})"
    if isinstance(inst, Fence):
        flavor = f"[{inst.flavor}]" if inst.flavor is not None else ""
        return f"fence.{inst.kind.value}{flavor} ; {inst.origin.value}"
    if isinstance(inst, CmpXchg):
        return f"{inst.dest} = cmpxchg {inst.addr}, {inst.expected}, {inst.new}"
    if isinstance(inst, AtomicXchg):
        return f"{inst.dest} = xchg {inst.addr}, {inst.value}"
    if isinstance(inst, AtomicAdd):
        return f"{inst.dest} = fadd {inst.addr}, {inst.value}"
    if isinstance(inst, Observe):
        return f"observe {inst.label!r}, {inst.value}"
    return repr(inst)


def format_function(func: Function) -> str:
    params = ", ".join(str(p) for p in func.params)
    lines = [f"func @{func.name}({params}):"]
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    lines = [f"; program {program.name}"]
    for name in program.globals:
        var = program.globals[name]
        if var.size == 1:
            lines.append(f"global @{name} = {var.init[0]}")
        else:
            lines.append(f"global @{name}[{var.size}] = {list(var.init)}")
    for name in program.functions:
        lines.append("")
        lines.append(format_function(program.functions[name]))
    for thread in program.threads:
        args = ", ".join(str(a) for a in thread.args)
        lines.append(f"thread @{thread.func_name}({args})")
    return "\n".join(lines)
