"""Eraser-style lockset analysis over the mini-C IR.

Eraser's discipline: every shared access should be protected by at
least one lock held at *every* access. The IR has no lock primitive,
so lock acquisition is recognized the way Eraser intercepts a locking
API:

* a call to a function whose name contains ``acquire`` (the corpus
  lock runtime's ``lock_acquire(&l)``) acquires the globals its
  pointer argument may denote;
* a call whose name contains ``release`` releases them;
* a ``cmpxchg`` on a global is a CAS-loop acquisition of that global
  (the spinlock idiom ``while (cas(&l, 0, 1)) {}``), and a plain store
  to a currently-held global releases it.

The analysis is a forward dataflow over the CFG: the lockset flowing
into a block is the *intersection* of its predecessors' out-sets
(Eraser's refinement), instructions transfer gen/kill within a block,
and every memory access records the set held immediately before it.
"""

from __future__ import annotations

from repro.analysis.aliasing import GlobalObj, PointsTo
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Call, CmpXchg, Instruction, Store
from repro.ir.values import Value


def _global_names(points_to: PointsTo, value: Value) -> frozenset[str]:
    return frozenset(
        o.name for o in points_to.pointees(value) if isinstance(o, GlobalObj)
    )


def _transfer(
    inst: Instruction, held: frozenset[str], points_to: PointsTo
) -> frozenset[str]:
    """The lockset after executing ``inst`` with ``held`` before it."""
    if isinstance(inst, CmpXchg):
        return held | _global_names(points_to, inst.addr)
    if isinstance(inst, Call):
        touched: frozenset[str] = frozenset()
        for arg in inst.args:
            touched |= _global_names(points_to, arg)
        if "acquire" in inst.callee:
            return held | touched
        if "release" in inst.callee:
            return held - touched
        return held
    if isinstance(inst, Store) and held:
        return held - _global_names(points_to, inst.addr)
    return held


def compute_locksets(
    func: Function, points_to: PointsTo
) -> dict[int, frozenset[str]]:
    """Lock globals held immediately before each memory access.

    Returns ``{instruction uid -> frozenset of lock global names}`` for
    every memory access of ``func``. Joins intersect; the fixpoint
    iterates until block out-sets stabilize (locksets only shrink at
    joins, so termination is immediate on a finite lock universe).
    """
    cfg = CFG(func)
    preds: dict[str, list[str]] = {b.label: [] for b in func.blocks}
    for label, succs in cfg.succ.items():
        for s in succs:
            preds[s].append(label)

    entry = func.blocks[0].label
    out_sets: dict[str, frozenset[str] | None] = {
        b.label: None for b in func.blocks
    }
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            if block.label == entry:
                held: frozenset[str] = frozenset()
            else:
                incoming = [
                    out_sets[p] for p in preds[block.label]
                    if out_sets[p] is not None
                ]
                if not incoming:
                    continue  # unreachable so far this round
                held = frozenset.intersection(*incoming)
            for inst in block.instructions:
                held = _transfer(inst, held, points_to)
            if out_sets[block.label] != held:
                out_sets[block.label] = held
                changed = True

    locksets: dict[int, frozenset[str]] = {}
    for block in func.blocks:
        if block.label == entry:
            held = frozenset()
        else:
            incoming = [
                out_sets[p] for p in preds[block.label]
                if out_sets[p] is not None
            ]
            held = frozenset.intersection(*incoming) if incoming else frozenset()
        for inst in block.instructions:
            if inst.is_memory_access():
                locksets[inst.uid] = held
            held = _transfer(inst, held, points_to)
    return locksets
