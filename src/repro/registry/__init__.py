"""Pluggable catalogs: variants, models, explorers, program sources.

Every string key a surface parses — ``--variant``, ``--model``, a
program reference — resolves through one of these registries, so new
detectors, machine models, explorers, or source kinds plug in without
touching the CLI or the :mod:`repro.api` facade.
"""

from repro.registry.core import Registry
from repro.registry.models import (
    EXPLORERS,
    MODELS,
    ModelEntry,
    backend_for_model,
    get_model,
    model_keys,
    register_model,
    weak_explorer_for,
    weak_model_keys,
)
from repro.registry.sources import (
    SOURCE_KINDS,
    ProgramSpec,
    ResolvedSource,
    resolve_spec,
)
from repro.registry.variants import (
    VARIANTS,
    DetectionVariant,
    detection_variant_keys,
    get_variant,
    pipeline_variant_keys,
    register_variant,
    trusted_variant_keys,
    variant_keys,
)

__all__ = [
    "DetectionVariant",
    "EXPLORERS",
    "MODELS",
    "ModelEntry",
    "ProgramSpec",
    "Registry",
    "ResolvedSource",
    "SOURCE_KINDS",
    "VARIANTS",
    "backend_for_model",
    "detection_variant_keys",
    "get_model",
    "get_variant",
    "model_keys",
    "pipeline_variant_keys",
    "register_model",
    "register_variant",
    "resolve_spec",
    "trusted_variant_keys",
    "variant_keys",
    "weak_explorer_for",
    "weak_model_keys",
]
