"""Unit tests for the timed TSO performance simulator."""

import pytest

from repro.core.pipeline import PipelineVariant, place_fences
from repro.frontend import compile_source
from repro.memmodel.litmus import LITMUS_TESTS
from repro.simulator.costmodel import DEFAULT_COSTS, FREE_FENCES, CostModel
from repro.simulator.machine import TSOSimulator, simulate


def test_mp_correct_result():
    stats = simulate(LITMUS_TESTS["mp"].compile())
    assert stats.observations[1] == (("r", 1),)
    assert stats.cycles > 0
    assert stats.per_thread_cycles.keys() == {0, 1}


def test_determinism():
    a = simulate(LITMUS_TESTS["dekker"].compile())
    b = simulate(LITMUS_TESTS["dekker"].compile())
    assert a.cycles == b.cycles
    assert a.final_globals == b.final_globals


def test_fences_add_cycles():
    base = simulate(LITMUS_TESTS["mp"].compile())
    fenced_prog = LITMUS_TESTS["mp"].compile()
    place_fences(fenced_prog, PipelineVariant.PENSIEVE)
    fenced = simulate(fenced_prog)
    assert fenced.cycles > base.cycles
    assert fenced.full_fences_executed > 0


def test_free_fence_model_shrinks_gap():
    prog1 = LITMUS_TESTS["mp"].compile()
    place_fences(prog1, PipelineVariant.PENSIEVE)
    expensive = TSOSimulator(prog1, DEFAULT_COSTS).run()
    prog2 = LITMUS_TESTS["mp"].compile()
    place_fences(prog2, PipelineVariant.PENSIEVE)
    free = TSOSimulator(prog2, FREE_FENCES).run()
    assert free.cycles < expensive.cycles


def test_compiler_fences_are_free():
    src = "global a; global b; fn f(t) { a = 1; b = 2; } thread f(0);"
    prog = compile_source(src, "t")
    place_fences(prog, PipelineVariant.PENSIEVE)  # only w->w: compiler directive
    stats = simulate(prog)
    assert stats.compiler_fences_executed >= 1
    assert stats.full_fences_executed == 0


def test_store_buffer_forwarding():
    # A thread must see its own buffered stores immediately.
    src = """
    global x;
    fn f(t) {
      x = 41;
      local r = x;
      observe("r", r + 1);
    }
    thread f(0);
    """
    stats = simulate(compile_source(src, "t"))
    assert stats.observations[0] == (("r", 42),)


def test_spinlock_mutual_exclusion():
    src = """
    global lock;
    global counter;
    fn worker(tid) {
      local i = 0;
      local old = 0;
      while (i < 10) {
        old = cas(&lock, 0, 1);
        while (old != 0) { old = cas(&lock, 0, 1); }
        counter = counter + 1;
        lock = 0;
        i = i + 1;
      }
    }
    thread worker(0);
    thread worker(1);
    thread worker(2);
    """
    stats = simulate(compile_source(src, "t"))
    assert stats.final_globals["counter"] == 30
    assert stats.rmws >= 30


def test_barrier_separates_phases():
    src = """
    global _bar_count;
    global _bar_sense;
    global a[4];
    global sum[4];

    fn barrier_wait(n) {
      local my = 0;
      local arrived = 0;
      my = _bar_sense;
      arrived = fadd(&_bar_count, 1);
      if (arrived == n - 1) {
        _bar_count = 0;
        _bar_sense = 1 - my;
      } else {
        while (_bar_sense == my) { }
      }
    }

    fn worker(tid) {
      a[tid] = tid + 1;
      barrier_wait(4);
      sum[tid] = a[0] + a[1] + a[2] + a[3];
    }
    thread worker(0);
    thread worker(1);
    thread worker(2);
    thread worker(3);
    """
    stats = simulate(compile_source(src, "t"))
    # every thread sees all writes from before the barrier
    assert all(stats.final_globals[f"sum[{i}]"] == 10 for i in range(4))


def test_stats_counters_consistency():
    stats = simulate(LITMUS_TESTS["dekker"].compile())
    assert stats.instructions > 0
    assert stats.shared_loads > 0
    assert stats.shared_stores > 0
    assert stats.cycles == max(stats.per_thread_cycles.values())


def test_runaway_guard():
    from repro.memmodel.interpreter import ExecutionError

    src = "global g; fn f(t) { while (1) { g = g + 1; } } thread f(0);"
    sim = TSOSimulator(compile_source(src, "t"), max_instructions_per_thread=2000)
    with pytest.raises(ExecutionError):
        sim.run()


def test_custom_cost_model_scales_loads():
    src = "global a[16]; fn f(t) { local i = 0; while (i < 16) { local r = a[i]; i = i + 1; } } thread f(0);"
    cheap = TSOSimulator(compile_source(src, "t"), CostModel(load=1)).run()
    costly = TSOSimulator(compile_source(src, "t"), CostModel(load=50)).run()
    assert costly.cycles > cheap.cycles + 16 * 40


def test_final_globals_include_buffered_stores():
    src = "global x; fn f(t) { x = 9; } thread f(0);"
    stats = simulate(compile_source(src, "t"))
    assert stats.final_globals["x"] == 9
