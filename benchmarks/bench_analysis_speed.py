"""Analysis-throughput benchmarks: the compiler-side costs.

The paper's pitch is a *practical* tool; these benchmarks track the
cost of each pipeline stage on the largest workload models so
regressions in analysis complexity are visible.
"""

import pytest

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.core.orderings import generate_orderings
from repro.core.pipeline import PipelineVariant, analyze_program
from repro.core.signatures import Variant, detect_acquires
from repro.frontend import compile_source
from repro.programs import get_program

# The largest models by static size.
BIG = ("water-nsquared", "water-spatial", "fft")


@pytest.fixture(scope="module", params=BIG)
def big_program(request):
    return get_program(request.param)


def test_frontend_compile_speed(benchmark, big_program):
    program = benchmark(lambda: big_program.compile())
    assert program.functions


def test_points_to_speed(benchmark, big_program):
    program = big_program.compile()
    funcs = list(program.functions.values())
    results = benchmark(lambda: [PointsTo(f) for f in funcs])
    assert len(results) == len(funcs)


def test_acquire_detection_speed(benchmark, big_program):
    program = big_program.compile()
    funcs = list(program.functions.values())

    def detect_all():
        return [detect_acquires(f, Variant.ADDRESS_CONTROL) for f in funcs]

    results = benchmark(detect_all)
    assert len(results) == len(funcs)


def test_ordering_generation_speed(benchmark, big_program):
    program = big_program.compile()
    prepared = [(f, EscapeInfo(f)) for f in program.functions.values()]

    def generate_all():
        return [generate_orderings(f, esc) for f, esc in prepared]

    results = benchmark(generate_all)
    assert sum(len(o) for o in results) > 0


@pytest.mark.parametrize("variant", list(PipelineVariant))
def test_full_pipeline_speed(benchmark, big_program, variant):
    def run():
        return analyze_program(big_program.compile(), variant)

    analysis = benchmark(run)
    assert analysis.total_escaping_reads > 0


def test_whole_suite_analysis_speed(benchmark):
    """Analyze all 17 programs with Control — the tool's end-to-end cost."""
    from repro.programs import all_programs

    progs = list(all_programs().values())

    def run():
        return [analyze_program(p.compile(), PipelineVariant.CONTROL) for p in progs]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == 17
