"""Exhaustive PSO (partial store order) operational model exploration.

PSO relaxes TSO's ``w->w`` ordering: each thread keeps a FIFO store
buffer *per address* (same-address stores stay ordered — coherence —
but stores to different addresses drain in any order). Loads forward
from the own per-address buffer; ``mfence`` and atomic RMWs require the
entire buffer empty.

This makes message passing (paper Fig. 4) genuinely break without
fences: the flag store can drain before the data store. The pipeline
driven by the PSO machine model must therefore fence the producer side
(``w -> w_rel`` into the release), which the integration tests verify
end to end — evidence that the Table-I orderings, not just the TSO
``w->r`` subset, are doing their job.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Program
from repro.ir.instructions import FenceKind
from repro.memmodel.interpreter import (
    ExecutionError,
    PendingAction,
    ThreadExecutor,
    ThreadState,
)
from repro.memmodel.sc import ExplorationResult, Outcome, make_outcome
from repro.memmodel.storebuf import AddrFifoMap, fifo_get, fifo_set

# Per-thread buffer: address -> FIFO of pending values (oldest first).
PsoBuffer = AddrFifoMap

_buffer_get = fifo_get
_buffer_set = fifo_set


def _buffer_empty(buffer: PsoBuffer) -> bool:
    return not buffer


class PSOExplorer:
    """DFS over the PSO state graph (threads x per-address buffers)."""

    def __init__(
        self,
        program: Program,
        max_states: int = 1_000_000,
        max_steps_per_thread: int = 100_000,
        observe_globals: Optional[list[str]] = None,
    ) -> None:
        self.program = program
        self.executor = ThreadExecutor(program)
        self.layout = self.executor.layout
        self.max_states = max_states
        self.max_steps = max_steps_per_thread
        self.observe_globals = observe_globals

    def _state_key(
        self,
        memory: dict[int, int],
        threads: list[ThreadState],
        buffers: list[PsoBuffer],
    ) -> tuple:
        return (
            tuple(sorted(memory.items())),
            tuple(ts.key() for ts in threads),
            tuple(buffers),
        )

    def explore(self) -> ExplorationResult:
        memory = self.layout.initial_memory()
        threads = self.executor.start_all()
        buffers: list[PsoBuffer] = [() for _ in threads]
        outcomes: set[Outcome] = set()
        visited: set[tuple] = set()
        stack = [(memory, threads, buffers)]
        states = 0
        complete = True

        while stack:
            memory, threads, buffers = stack.pop()
            key = self._state_key(memory, threads, buffers)
            if key in visited:
                continue
            visited.add(key)
            states += 1
            if states > self.max_states:
                complete = False
                break

            progressed = False

            # (a) flush the oldest entry of ANY per-address queue: this
            # is where PSO differs from TSO — each address drains
            # independently, so differently-addressed stores reorder.
            for i, buffer in enumerate(buffers):
                for addr, values in buffer:
                    new_memory = dict(memory)
                    new_memory[addr] = values[0]
                    new_buffers = list(buffers)
                    new_buffers[i] = _buffer_set(buffer, addr, values[1:])
                    stack.append(
                        (new_memory, [t.clone() for t in threads], new_buffers)
                    )
                    progressed = True

            # (b) thread steps.
            for i, ts in enumerate(threads):
                if ts.done:
                    continue
                new_threads = [t.clone() for t in threads]
                new_memory = dict(memory)
                new_buffers = list(buffers)
                clone = new_threads[i]
                pending = self.executor.next_action(clone, self.max_steps)
                if pending is None:
                    stack.append((new_memory, new_threads, new_buffers))
                    progressed = True
                    continue
                if not self._apply(new_memory, new_buffers, i, clone, pending):
                    continue
                stack.append((new_memory, new_threads, new_buffers))
                progressed = True

            if not progressed:
                if any(buffers):  # pragma: no cover - flushes always enabled
                    raise ExecutionError("deadlock with non-empty buffer")
                outcomes.add(
                    make_outcome(self.layout, memory, threads, self.observe_globals)
                )

        return ExplorationResult(outcomes, states, complete)

    def _apply(
        self,
        memory: dict[int, int],
        buffers: list[PsoBuffer],
        i: int,
        ts: ThreadState,
        pending: PendingAction,
    ) -> bool:
        buffer = buffers[i]
        if pending.kind == "load":
            values = _buffer_get(buffer, pending.addr)
            value = values[-1] if values else memory.get(pending.addr, 0)
            self.executor.commit(ts, pending, value)
            return True
        if pending.kind == "store":
            values = _buffer_get(buffer, pending.addr)
            buffers[i] = _buffer_set(buffer, pending.addr, values + (pending.value,))
            self.executor.commit(ts, pending)
            return True
        if pending.kind == "rmw":
            if not _buffer_empty(buffer):
                return False
            old = memory.get(pending.addr, 0)
            result, new = pending.rmw_result(old)
            if new is not None:
                memory[pending.addr] = new
            self.executor.commit(ts, pending, result)
            return True
        if pending.kind == "fence":
            if pending.fence_kind is FenceKind.FULL and not _buffer_empty(buffer):
                return False
            self.executor.commit(ts, pending)
            return True
        raise ExecutionError(f"unknown action {pending.kind}")  # pragma: no cover
