"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` (the module-level :data:`REGISTRY`)
collects everything a process observes. Samples are identified by a
Prometheus-style sample name — ``name{label="value",...}`` with labels
key-sorted — which doubles as the JSON payload key, so cross-worker
aggregation is a key-wise sum over identically-shaped payloads.

Histograms use one fixed exponential bucket ladder
(:data:`DEFAULT_BUCKETS`, seconds): fixed bounds make per-worker
histograms mergeable by summing bucket counts, after which
p50/p95/p99 are re-derived by linear interpolation inside the target
bucket. The overflow bucket reports its lower bound (there is nothing
to interpolate toward).

Exposition is dual: :func:`render_prometheus` emits text format v0
(``# TYPE`` headers, ``_bucket``/``_sum``/``_count`` histogram
series, cumulative ``le`` labels ending at ``+Inf``), and the payload
itself is the JSON form. ``tools/check_prom_format.py`` validates the
text in CI.

Everything here is stdlib-only and thread-safe under one lock; the
hot-path cost of one ``inc``/``observe`` is a dict update.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable

#: Histogram bucket upper bounds, in seconds. Fixed across the fleet
#: so worker payloads merge by summing counts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def sample_name(name: str, labels: dict[str, str]) -> str:
    """``name{k="v",...}`` with labels key-sorted (no braces if none)."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def split_sample(sample: str) -> tuple[str, str]:
    """``name{labels}`` -> ``(name, labels)`` (labels without braces,
    empty string when the sample is unlabelled)."""
    if "{" not in sample:
        return sample, ""
    name, _, rest = sample.partition("{")
    return name, rest.rstrip("}")


class _Histogram:
    """Cumulative fixed-bucket histogram with an overflow bucket."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow (> last)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_payload(self) -> dict:
        payload = {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            payload[key] = histogram_quantile(payload, q)
        return payload


def histogram_quantile(payload: dict, q: float) -> float:
    """Quantile ``q`` of a histogram payload, by linear interpolation
    within the target bucket (0.0 on an empty histogram)."""
    total = payload.get("count", 0)
    if not total:
        return 0.0
    bounds = payload["buckets"]
    target = q * total
    cumulative = 0
    for i, bucket_count in enumerate(payload["counts"]):
        if not bucket_count:
            continue
        lo = bounds[i - 1] if i else 0.0
        if i >= len(bounds):
            return round(bounds[-1], 6)  # overflow: report the ladder top
        cumulative += bucket_count
        if cumulative >= target:
            hi = bounds[i]
            fraction = 1.0 - (cumulative - target) / bucket_count
            return round(lo + (hi - lo) * fraction, 6)
    return round(bounds[-1], 6)


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    def inc(self, name: str, value: float = 1, **labels: str) -> None:
        key = sample_name(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        key = sample_name(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: str) -> None:
        key = sample_name(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram()
            hist.observe(value)

    def to_payload(self) -> dict:
        """JSON-ready snapshot of every sample."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: hist.to_payload()
                    for key, hist in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Forget everything (tests and the overhead harness)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every instrumentation point writes to.
REGISTRY = MetricsRegistry()


# --- aggregation ----------------------------------------------------------
def merge_payloads(payloads: Iterable[dict]) -> dict:
    """Sum payloads sample-wise (cross-worker aggregation).

    Counters, gauges, and histogram bucket counts/sums add; histogram
    percentiles are re-derived from the merged buckets. Histograms
    with mismatched bucket ladders (a version skew that cannot happen
    within one fleet) keep the first ladder and fold in sum/count only.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for payload in payloads:
        if not isinstance(payload, dict):
            continue
        for key, value in (payload.get("counters") or {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in (payload.get("gauges") or {}).items():
            gauges[key] = gauges.get(key, 0) + value
        for key, hist in (payload.get("histograms") or {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if merged["buckets"] == list(hist["buckets"]):
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], hist["counts"])
                ]
            merged["sum"] += hist["sum"]
            merged["count"] += hist["count"]
    for hist in histograms.values():
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            hist[key] = histogram_quantile(hist, q)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def merge_counters(payload: dict, counters: dict[str, float]) -> dict:
    """Fold extra counter samples into ``payload`` (in place)."""
    bucket = payload.setdefault("counters", {})
    for key, value in counters.items():
        bucket[key] = bucket.get(key, 0) + value
    return payload


def query_engine_counters(session_stats: dict) -> dict[str, float]:
    """Counter samples derived from a ``Session.stats()`` payload.

    Sampled at scrape time from the engine's own ``QueryStats``, so the
    ``metrics`` op's per-query-kind hit/miss counts match
    ``Session.stats()`` exactly — by construction, not by parallel
    bookkeeping.
    """
    query_stats = session_stats.get("query_stats") or {}
    counters: dict[str, float] = {}
    for total in ("lookups", "hits", "misses", "computes", "restored",
                  "evictions"):
        counters[f"repro_query_{total}_total"] = query_stats.get(total, 0)
    for stat, by_kind_key in (
        ("hits", "by_query_hits"),
        ("misses", "by_query_misses"),
        ("computes", "by_query"),
        ("evictions", "by_query_evictions"),
    ):
        for kind, value in (query_stats.get(by_kind_key) or {}).items():
            counters[
                sample_name(f"repro_query_{stat}_total", {"query": kind})
            ] = value
    # The shared artifact store's effectiveness: restores are disk
    # hits, computes the misses a warmer store would have avoided.
    cache = session_stats.get("query_cache") or {}
    counters["repro_store_hits_total"] = cache.get("restored", 0)
    counters["repro_store_misses_total"] = cache.get("computes", 0)
    return counters


# --- Prometheus text exposition (format v0) -------------------------------
def _metric_type(name: str) -> str:
    return "counter" if name.endswith("_total") else "gauge"


def render_prometheus(payload: dict) -> str:
    """Text format v0 for a metrics payload (own or merged)."""
    families: dict[str, list[str]] = {}
    types: dict[str, str] = {}

    def family(name: str, metric_type: str) -> list[str]:
        if name not in families:
            families[name] = []
            types[name] = metric_type
        return families[name]

    for sample, value in sorted((payload.get("counters") or {}).items()):
        name, _labels = split_sample(sample)
        family(name, "counter").append(f"{sample} {_format_value(value)}")
    for sample, value in sorted((payload.get("gauges") or {}).items()):
        name, _labels = split_sample(sample)
        family(name, "gauge").append(f"{sample} {_format_value(value)}")
    for sample, hist in sorted((payload.get("histograms") or {}).items()):
        name, labels = split_sample(sample)
        lines = family(name, "histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(
                f"{name}_bucket{{{_with_le(labels, format(bound, 'g'))}}}"
                f" {cumulative}"
            )
        cumulative += hist["counts"][len(hist["buckets"])]
        lines.append(f"{name}_bucket{{{_with_le(labels, '+Inf')}}} {cumulative}")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}_sum{suffix} {_format_value(hist['sum'])}")
        lines.append(f"{name}_count{suffix} {cumulative}")

    out: list[str] = []
    for name, lines in sorted(families.items()):
        out.append(f"# TYPE {name} {types[name]}")
        out.extend(lines)
    return "\n".join(out) + "\n"


def _with_le(labels: str, le: str) -> str:
    return f'{labels},le="{le}"' if labels else f'le="{le}"'


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
