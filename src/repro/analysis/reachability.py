"""CFG reachability lookup table for ordering generation.

Paper Section 4.3: "Whether there exists a path between basic blocks is
determined prior to this process with an examination of the CFG, to
create a lookup table of reachability. This can then be queried during
ordering generation."
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Instruction


class ReachabilityTable:
    """Answers "can execution flow from access u to access v?" queries.

    Within a basic block, statement order decides. Across blocks, the
    precomputed block-level reachability decides. A later statement can
    also reach an earlier one in the same block when the block lies on
    a CFG cycle (the next loop iteration).
    """

    def __init__(self, func: Function, cfg: CFG | None = None) -> None:
        self.function = func
        self.cfg = cfg if cfg is not None else CFG(func)

    def exists_path(self, u: Instruction, v: Instruction) -> bool:
        """True if some execution path runs from ``u`` to ``v``.

        ``u == v`` counts only via a cycle (the access reaching its own
        next dynamic instance).
        """
        u_block, u_index = self.function.position(u)
        v_block, v_index = self.function.position(v)
        u_label = self.function.blocks[u_block].label
        v_label = self.function.blocks[v_block].label
        if u_block == v_block and u_index < v_index:
            return True
        return self.cfg.reaches(u_label, v_label)

    def block_reaches(self, src_label: str, dst_label: str) -> bool:
        return self.cfg.reaches(src_label, dst_label)
