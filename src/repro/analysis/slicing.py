"""The intraprocedural backwards slicer (paper Listing 2).

Both acquire-detection algorithms (``Control``, ``Address+Control``)
delegate to this slicer: it walks backwards from seed instructions
through register defs and — for loads — through the stores that may
have produced the loaded value (via alias analysis), registering every
*escaping* read encountered as a synchronization-read candidate.

The ``seen`` set is shared across all slices within one function, both
to terminate on cycles and because slices from different anchors
overlap heavily (the paper notes this as an efficiency measure).
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.values import get_def
from repro.util.orderedset import OrderedSet


class Slicer:
    """Backwards slicer over one function.

    ``chase_load_addresses`` is an extension beyond the paper's
    Listing 2 (which chases only ``potential_writers`` of a load, not
    the load's address operand). It is off by default for faithfulness;
    turning it on gives a strictly more conservative slice and is used
    by an ablation benchmark.
    """

    def __init__(
        self,
        func: Function,
        points_to: PointsTo,
        escape_info: EscapeInfo,
        chase_load_addresses: bool = False,
        writers_cache: dict[int, list[Instruction]] | None = None,
    ) -> None:
        self.function = func
        self.points_to = points_to
        self.escape_info = escape_info
        self.chase_load_addresses = chase_load_addresses
        # Cache: potential_writers is O(|accesses|) per query and hit
        # repeatedly for the same load across overlapping slices. An
        # AnalysisContext passes one shared dict so every slicer over
        # the same function reuses each other's answers.
        self._writers_cache: dict[int, list[Instruction]] = (
            writers_cache if writers_cache is not None else {}
        )

    def _potential_writers(self, inst: Instruction) -> list[Instruction]:
        cached = self._writers_cache.get(id(inst))
        if cached is None:
            cached = self.points_to.potential_writers(inst)
            self._writers_cache[id(inst)] = cached
        return cached

    def slice(
        self,
        work_list: OrderedSet[Instruction],
        seen: set[Instruction],
        sync_reads: OrderedSet[Instruction],
    ) -> None:
        """Listing 2, transcribed.

        Drains ``work_list``; populates ``sync_reads`` with escaping
        reads found in the backwards slice, and ``seen`` with every
        visited instruction.
        """
        while work_list:
            inst = work_list.pop_first()
            if inst in seen:
                continue
            seen.add(inst)

            if inst.reads_memory():  # loads; RMWs read too (Section 3)
                if self.escape_info.is_escaping(inst):
                    sync_reads.add(inst)
                for store in self._potential_writers(inst):
                    work_list.add(store)
                if self.chase_load_addresses:
                    addr_def = get_def(inst.address_operand())
                    if addr_def is not None:
                        work_list.add(addr_def)
            else:
                for operand in inst.operands:
                    operand_def = get_def(operand)
                    if operand_def is not None:
                        work_list.add(operand_def)

    def slice_from_values(
        self,
        values: Iterable,
        seen: set[Instruction],
        sync_reads: OrderedSet[Instruction],
    ) -> None:
        """Seed a slice from operand values (via ``get_def``) and run it."""
        work_list: OrderedSet[Instruction] = OrderedSet()
        for value in values:
            defining = get_def(value)
            if defining is not None:
                work_list.add(defining)
        self.slice(work_list, seen, sync_reads)
