#!/usr/bin/env python
"""Emit one real Prometheus exposition for the format checker.

Drives a warm :class:`~repro.api.Session` through the very same
:class:`~repro.serve.server.ServeDispatcher` the daemon uses — one
analyze (with optimal synthesis, so the synthesis histograms fill),
one model check, one deliberate schema error — then prints the
``metrics`` op's text exposition to stdout. CI pipes it into
``tools/check_prom_format.py``::

    PYTHONPATH=src python tools/metrics_smoke.py \
        | python tools/check_prom_format.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ProgramSpec  # noqa: E402
from repro.api.reports import AnalyzeRequest, CheckRequest  # noqa: E402
from repro.api.session import Session  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.serve.server import ServeDispatcher  # noqa: E402


def main() -> int:
    obs_metrics.REGISTRY.reset()
    dispatcher = ServeDispatcher(Session())
    requests = [
        AnalyzeRequest(
            program=ProgramSpec.corpus("matrix"),
            arch="x86", synthesis="optimal",
        ).to_payload(),
        CheckRequest(program=ProgramSpec.litmus("mp")).to_payload(),
        {"kind": "analyze-request"},  # schema error: counts ok="false"
    ]
    for request in requests:
        dispatcher.handle_line(json.dumps(request))
    response, _stop = dispatcher._handle_op({"op": "metrics"})
    if not response.get("ok"):
        print(f"metrics op failed: {response.get('error')}", file=sys.stderr)
        return 1
    sys.stdout.write(response["text"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
