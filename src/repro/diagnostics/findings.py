"""Structured diagnostics: findings with stable codes and IR spans.

A :class:`Finding` is one diagnostic a lint pass produced: a stable
machine-readable code (``RACE001``, ``FENCE101``, ...), a severity, a
human message, and the IR :class:`SourceSpan`\\ s it anchors to. Both
types are flat frozen dataclasses so they cross the wire unchanged
inside the schema-versioned lint report.

Stable codes shipped by the built-in passes:

========== ======== ====================================================
code       severity meaning
========== ======== ====================================================
RACE001    varies   statically unordered conflicting access pair
                    (``error`` once explorer-confirmed, ``warning``
                    unchecked, ``note`` when exhaustively refuted)
RACE002    error    dynamic race the static DRF gate missed — a
                    detector gap; the program becomes a fuzz seed
FENCE101   note     redundant fence: no memory access separates it
                    from the previous barrier
FENCE102   error    flavored fence too weak for the orderings crossing
                    its cut (e.g. ``eieio`` guarding a ``w->r`` cut)
FENCE103   warning  pointer publish without a fence between the
                    pointee's initialization and the publishing store,
                    on a model that reorders ``w->w``
FENCE104   note     the greedy count-minimizing fence plan is strictly
                    costlier than the min-cost synthesis on the
                    requested arch (the finding carries the optimizer's
                    witness cut)
========== ======== ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.printer import format_instruction

#: Severities, weakest first; ``--fail-on`` thresholds index into this.
SEVERITIES: tuple[str, ...] = ("note", "warning", "error")


def severity_rank(severity: str) -> int:
    """Position in :data:`SEVERITIES`; raises on unknown severities."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; known: {', '.join(SEVERITIES)}"
        ) from None


@dataclass(frozen=True)
class SourceSpan:
    """One IR location: an instruction inside a function's block."""

    function: str
    block: str
    index: int
    uid: int
    #: The instruction's printed form, so a report is readable without
    #: the IR in hand.
    text: str

    def render(self) -> str:
        return f"{self.function}/{self.block}[{self.index}]: {self.text}"


def span_of(func: Function, inst: Instruction) -> SourceSpan:
    """The span of a finalized instruction of ``func``."""
    block_index, index = func.position(inst)
    return SourceSpan(
        function=func.name,
        block=func.blocks[block_index].label,
        index=index,
        uid=inst.uid,
        text=format_instruction(inst),
    )


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint pass."""

    code: str
    severity: str
    message: str
    spans: tuple[SourceSpan, ...] = ()
    #: Registry key of the pass that produced it.
    pass_id: str = ""
    #: Explorer verdict for race findings: ``confirmed`` / ``refuted``
    #: / ``unknown``; empty for purely static findings.
    verdict: str = ""
    #: Rendered witness interleaving (confirmed races only).
    witness: str = ""

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validate eagerly

    def render(self) -> str:
        lines = [f"{self.severity} {self.code}: {self.message}"]
        for span in self.spans:
            lines.append(f"    at {span.render()}")
        if self.verdict:
            lines.append(f"    verdict: {self.verdict}")
        if self.witness:
            lines.append("    witness:")
            lines.extend(
                "    " + line for line in self.witness.splitlines()
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class FindingCounts:
    """Findings tallied by severity (report summary line)."""

    note: int = 0
    warning: int = 0
    error: int = 0

    @staticmethod
    def of(findings: tuple[Finding, ...]) -> "FindingCounts":
        tally = {s: 0 for s in SEVERITIES}
        for finding in findings:
            tally[finding.severity] += 1
        return FindingCounts(**tally)

    @property
    def total(self) -> int:
        return self.note + self.warning + self.error

    def at_least(self, severity: str) -> int:
        """How many findings sit at or above ``severity``."""
        floor = severity_rank(severity)
        return sum(
            count
            for s, count in (
                ("note", self.note),
                ("warning", self.warning),
                ("error", self.error),
            )
            if severity_rank(s) >= floor
        )


def sort_findings(findings: list[Finding]) -> tuple[Finding, ...]:
    """Most severe first; program order within a severity."""
    return tuple(
        sorted(
            findings,
            key=lambda f: (
                -severity_rank(f.severity),
                f.code,
                f.spans[0].function if f.spans else "",
                f.spans[0].uid if f.spans else -1,
            ),
        )
    )

