"""Unit tests for the mini-C lexer and parser."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import LexError, tokenize
from repro.frontend.parser import ParseError, parse


# --- lexer -----------------------------------------------------------------


def test_tokenize_kinds():
    toks = tokenize('fn f() { observe("x", 1); }')
    kinds = [t.kind for t in toks]
    assert kinds[-1] == "eof"
    assert ("str", "x") in [(t.kind, t.text) for t in toks]


def test_tokenize_line_numbers():
    toks = tokenize("a\nb\nc")
    assert [t.line for t in toks if t.kind == "ident"] == [1, 2, 3]


def test_tokenize_comments_skipped():
    toks = tokenize("a // comment\n/* block\ncomment */ b")
    idents = [t.text for t in toks if t.kind == "ident"]
    assert idents == ["a", "b"]


def test_tokenize_longest_match_operators():
    toks = tokenize("a <= b << c == d")
    ops = [t.text for t in toks if t.kind == "op"]
    assert ops == ["<=", "<<", "=="]


def test_tokenize_unterminated_comment():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_tokenize_unterminated_string():
    with pytest.raises(LexError):
        tokenize('observe("oops')


def test_tokenize_bad_character():
    with pytest.raises(LexError):
        tokenize("a $ b")


# --- parser ------------------------------------------------------------------


def test_parse_globals():
    mod = parse("global int x; global arr[4]; global y = -3;")
    assert [g.name for g in mod.globals] == ["x", "arr", "y"]
    assert mod.globals[1].size == 4
    assert mod.globals[2].init == (-3,)


def test_parse_global_array_init():
    mod = parse("global a[3] = {1, 2, 3};")
    assert mod.globals[0].init == (1, 2, 3)


def test_parse_global_array_init_wrong_arity():
    with pytest.raises(ParseError):
        parse("global a[3] = {1, 2};")


def test_parse_global_address_init():
    mod = parse("global int x; global p = &x;")
    assert mod.globals[1].init == (("&", "x"),)


def test_parse_function_params():
    mod = parse("fn f(a, b) { }")
    assert mod.functions[0].params == ("a", "b")


def test_parse_threads():
    mod = parse("fn f(t) { } thread f(1); thread f(2);")
    assert [t.args for t in mod.threads] == [(1,), (2,)]


def test_parse_precedence():
    mod = parse("fn f() { local r = 1 + 2 * 3; }")
    decl = mod.functions[0].body.stmts[0]
    assert isinstance(decl, ast.LocalDecl)
    init = decl.init
    assert isinstance(init, ast.Binary) and init.op == "+"
    assert isinstance(init.rhs, ast.Binary) and init.rhs.op == "*"


def test_parse_unary_chain():
    mod = parse("fn f() { local p; local r = **p; }")
    init = mod.functions[0].body.stmts[1].init
    assert isinstance(init, ast.Unary) and init.op == "*"
    assert isinstance(init.operand, ast.Unary) and init.operand.op == "*"


def test_parse_busy_wait_empty_body():
    mod = parse("global f; fn w() { while (f == 0); }")
    loop = mod.functions[0].body.stmts[0]
    assert isinstance(loop, ast.While)
    assert loop.body.stmts == ()


def test_parse_if_else_chain():
    mod = parse("global x; fn f() { if (x) { } else if (x) { } else { } }")
    stmt = mod.functions[0].body.stmts[0]
    assert isinstance(stmt, ast.If)
    nested = stmt.els.stmts[0]
    assert isinstance(nested, ast.If)
    assert nested.els is not None


def test_parse_for_desugar_components():
    mod = parse("fn f() { local i; for (i = 0; i < 4; i = i + 1) { } }")
    loop = mod.functions[0].body.stmts[1]
    assert isinstance(loop, ast.For)
    assert loop.init is not None and loop.cond is not None and loop.step is not None


def test_parse_cas_arity():
    with pytest.raises(ParseError):
        parse("global x; fn f() { local r = cas(&x, 1); }")


def test_parse_xchg_fadd():
    mod = parse("global x; fn f() { local a = xchg(&x, 1); local b = fadd(&x, 2); }")
    stmts = mod.functions[0].body.stmts
    assert isinstance(stmts[0].init, ast.XchgExpr)
    assert isinstance(stmts[1].init, ast.FaddExpr)


def test_parse_fence_statements():
    mod = parse("fn f() { fence; cfence; }")
    stmts = mod.functions[0].body.stmts
    assert isinstance(stmts[0], ast.FenceStmt) and stmts[0].full
    assert isinstance(stmts[1], ast.FenceStmt) and not stmts[1].full


def test_parse_invalid_assignment_target():
    with pytest.raises(ParseError, match="assignment target"):
        parse("fn f() { 1 = 2; }")


def test_parse_break_continue():
    mod = parse("fn f() { while (1) { break; continue; } }")
    body = mod.functions[0].body.stmts[0].body
    assert isinstance(body.stmts[0], ast.Break)
    assert isinstance(body.stmts[1], ast.Continue)


def test_parse_observe():
    mod = parse('fn f() { observe("val", 1 + 2); }')
    stmt = mod.functions[0].body.stmts[0]
    assert isinstance(stmt, ast.ObserveStmt)
    assert stmt.label == "val"


def test_parse_index_expressions():
    mod = parse("global a[4]; fn f() { local r = a[a[0]]; }")
    init = mod.functions[0].body.stmts[0].init
    assert isinstance(init, ast.Index)
    assert isinstance(init.index, ast.Index)


def test_parse_error_on_garbage_top_level():
    with pytest.raises(ParseError, match="expected global/fn/thread"):
        parse("banana;")


def test_parse_logical_ops():
    mod = parse("global x; global y; fn f() { if (x && y || !x) { } }")
    cond = mod.functions[0].body.stmts[0].cond
    assert isinstance(cond, ast.Binary) and cond.op == "||"
