"""Sequentially-consistent execution exploration.

Explores interleavings of visible actions (with dynamic partial-order
reduction and state-key memoization via
:class:`repro.memmodel.explore.CoreExplorer`, so spin loops terminate
and commuting actions are explored once) and collects the set of final
outcomes. This defines the paper's reference behaviour: "the intended
behavior of the program [is] the set of data read actions of any
possible sequentially consistent execution" — exposed here through
``observe`` results plus final global values.

Also provides memoization-free bounded *trace* enumeration, which the
happens-before/race machinery consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.ir.function import Program
from repro.ir.instructions import Instruction
from repro.memmodel.explore import LOCAL_FP, CoreExplorer, Transition
from repro.memmodel.interpreter import (
    ExecutionError,
    GlobalLayout,
    ThreadExecutor,
    ThreadState,
)


@dataclass(frozen=True)
class Outcome:
    """A final program outcome: observations plus (scalar) global values."""

    observations: tuple[tuple[int, str, int], ...]  # (tid, label, value), sorted
    final_globals: tuple[tuple[str, int], ...]  # sorted name/value pairs

    def observation_dict(self) -> dict[str, int]:
        return {f"{tid}:{label}": value for tid, label, value in self.observations}

    def globals_dict(self) -> dict[str, int]:
        return dict(self.final_globals)


@dataclass
class ExplorationResult:
    outcomes: set[Outcome]
    states_explored: int
    complete: bool
    #: "complete" | "bounded:max-states" | "bounded:depth" — why the
    #: exploration stopped (principled truncation reporting).
    verdict: str = "complete"
    #: Whether partial-order reduction was active for this run.
    reduced: bool = False
    #: Iterative-deepening passes taken (1 for a plain bounded DFS).
    rounds: int = 1

    def __post_init__(self) -> None:
        if not self.complete and self.verdict == "complete":
            self.verdict = "bounded:max-states"

    def observation_sets(self) -> set[tuple[tuple[int, str, int], ...]]:
        return {o.observations for o in self.outcomes}


def make_outcome(
    layout: GlobalLayout,
    memory: dict[int, int],
    threads: Iterable[ThreadState],
    observe_globals: Optional[list[str]] = None,
) -> Outcome:
    observations = tuple(
        sorted(
            (ts.tid, label, value)
            for ts in threads
            for label, value in ts.observations
        )
    )
    final = layout.final_globals(memory)
    if observe_globals is not None:
        final = {k: v for k, v in final.items() if k in observe_globals}
    return Outcome(observations, tuple(sorted(final.items())))


class SCExplorer(CoreExplorer):
    """DPOR DFS over the SC state graph. State = (memory, threads)."""

    MODEL_KEY = "sc"
    DEFAULT_MAX_STATES = 500_000

    def initial_state(self) -> tuple:
        return (
            self.layout.initial_memory(),
            tuple(self.executor.start_all()),
        )

    def threads_of(self, state: tuple) -> tuple[ThreadState, ...]:
        return state[1]

    def state_parts(self, state: tuple) -> tuple[tuple, tuple]:
        memory, threads = state
        return tuple(sorted(memory.items())), tuple(() for _ in threads)

    def outcome_of(self, state: tuple) -> Outcome:
        memory, threads = state
        return make_outcome(self.layout, memory, threads, self.observe_globals)

    def transitions(self, state: tuple) -> list[Transition]:
        memory, threads = state
        out: list[Transition] = []
        for i, ts in enumerate(threads):
            if ts.done:
                continue
            new_threads, clone, pending = self._advance(threads, i)
            if pending is None:
                # Thread ran to completion with no more visible actions.
                out.append(
                    Transition(("t", i), i, True, LOCAL_FP, ((memory, new_threads),))
                )
                continue
            if pending.kind == "load":
                self.executor.commit(clone, pending, memory.get(pending.addr, 0))
                fp = self._addr_fp(pending.addr, reads=True)
                succ = (memory, new_threads)
            elif pending.kind == "store":
                new_memory = dict(memory)
                new_memory[pending.addr] = pending.value
                self.executor.commit(clone, pending)
                fp = self._addr_fp(pending.addr, writes=True)
                succ = (new_memory, new_threads)
            elif pending.kind == "rmw":
                new_memory = dict(memory)
                old = new_memory.get(pending.addr, 0)
                result, new = pending.rmw_result(old)
                if new is not None:
                    new_memory[pending.addr] = new
                self.executor.commit(clone, pending, result)
                fp = self._addr_fp(pending.addr, reads=True, writes=True)
                succ = (new_memory, new_threads)
            elif pending.kind == "fence":
                self.executor.commit(clone, pending)  # no-ops under SC
                fp = LOCAL_FP
                succ = (memory, new_threads)
            else:  # pragma: no cover
                raise ExecutionError(f"unknown action {pending.kind}")
            out.append(Transition(("t", i), i, True, fp, (succ,)))
        return out


# --- bounded trace enumeration (no memoization) -----------------------------


@dataclass(frozen=True)
class TraceAction:
    """One memory action in an execution trace."""

    index: int
    tid: int
    is_write: bool
    addr: int
    value: int
    inst: Instruction = field(hash=False, compare=False)


@dataclass
class Trace:
    actions: list[TraceAction]
    outcome: Outcome
    complete: bool  # False if truncated by the depth bound


def enumerate_sc_traces(
    program: Program,
    max_traces: int = 2_000,
    max_actions: int = 200,
    max_steps_per_thread: int = 100_000,
    schedule_filter: Optional[Callable[[int], bool]] = None,
) -> list[Trace]:
    """Enumerate complete SC traces by DFS (no state merging).

    Exponential in general — intended for litmus-scale programs. Each
    RMW contributes a read action then a write action (atomically
    adjacent), matching the paper's read-followed-by-write treatment.
    """
    executor = ThreadExecutor(program)
    layout = executor.layout
    traces: list[Trace] = []

    def dfs(
        memory: dict[int, int],
        threads: list[ThreadState],
        actions: list[TraceAction],
    ) -> None:
        if len(traces) >= max_traces:
            return
        progressed = False
        for i, ts in enumerate(threads):
            if ts.done:
                continue
            if schedule_filter is not None and not schedule_filter(i):
                continue
            new_threads = [t.clone() for t in threads]
            new_memory = dict(memory)
            clone = new_threads[i]
            pending = executor.next_action(clone, max_steps_per_thread)
            if pending is None:
                dfs(new_memory, new_threads, actions)
                progressed = True
                continue
            new_actions = list(actions)
            if len(new_actions) >= max_actions:
                traces.append(
                    Trace(
                        new_actions,
                        make_outcome(layout, new_memory, new_threads),
                        complete=False,
                    )
                )
                return
            index = len(new_actions)
            if pending.kind == "load":
                value = new_memory.get(pending.addr, 0)
                new_actions.append(
                    TraceAction(index, clone.tid, False, pending.addr, value, pending.inst)
                )
                executor.commit(clone, pending, value)
            elif pending.kind == "store":
                new_memory[pending.addr] = pending.value
                new_actions.append(
                    TraceAction(
                        index, clone.tid, True, pending.addr, pending.value, pending.inst
                    )
                )
                executor.commit(clone, pending)
            elif pending.kind == "rmw":
                old = new_memory.get(pending.addr, 0)
                result, new = pending.rmw_result(old)
                new_actions.append(
                    TraceAction(index, clone.tid, False, pending.addr, old, pending.inst)
                )
                if new is not None:
                    new_memory[pending.addr] = new
                    new_actions.append(
                        TraceAction(
                            index + 1, clone.tid, True, pending.addr, new, pending.inst
                        )
                    )
                executor.commit(clone, pending, result)
            else:  # fence
                executor.commit(clone, pending)
            dfs(new_memory, new_threads, new_actions)
            progressed = True
        if not progressed and len(traces) < max_traces:
            traces.append(
                Trace(
                    list(actions),
                    make_outcome(layout, memory, threads),
                    complete=True,
                )
            )

    dfs(layout.initial_memory(), executor.start_all(), [])
    return traces
