"""The async cluster frontend: many connections, few worker processes.

This is the fleet-scale half of ``repro serve``. One asyncio event
loop multiplexes every client connection (JSON lines, the existing
schema-versioned ``*Request`` envelopes, unchanged), and a pool of
:mod:`~repro.cluster.worker` processes does the actual analysis:

* the **router** (:class:`~repro.cluster.router.HashRing`) pins each
  program name to one worker, so warm ``QueryEngine`` contexts and
  compiled-program LRUs stay worker-local across edits;
* each worker link is a length-prefixed framed pipe with strict FIFO
  response matching; per-worker outstanding work is bounded
  (``queue_limit``) and excess requests are refused immediately with
  ``{"ok": false, "error": "overloaded", "retry_after": ...}``;
* per-request **deadlines** abandon stragglers (the client gets a
  deadline error; the worker's eventual answer is dropped);
* worker **death** is detected by link EOF or the health loop; its
  queued and in-flight requests are forwarded once to the surviving
  shards (mid-flight resharding), the ring rebalances, and the slot is
  respawned — client connections never drop because a worker did;
* **graceful drain** (SIGTERM/SIGINT or the ``shutdown`` op) stops
  accepting, lets in-flight requests finish within ``drain_timeout``,
  closes the worker links (EOF is the workers' shutdown signal), and
  exits 0.

Responses are byte-identical to the threaded daemon and one-shot CLI:
workers run the very same ``ServeDispatcher``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import random
import secrets
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import repro
from repro.cluster.protocol import (
    MAX_FRAME,
    ProtocolError,
    frame_bytes,
    read_frame,
)
from repro.cluster.router import HashRing, routing_key
from repro.cluster.store import ArtifactStore
from repro.cluster.worker import spawn_worker
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass
class ClusterConfig:
    """Operational knobs for one cluster frontend."""

    workers: int = 2
    #: Max outstanding (queued + in-flight) requests per worker before
    #: new ones are refused with an ``overloaded`` error.
    queue_limit: int = 64
    #: Per-request deadline in seconds (``None`` disables).
    request_timeout: float | None = 300.0
    #: How long graceful shutdown waits for in-flight work.
    drain_timeout: float = 10.0
    #: Base backoff hint returned with ``overloaded`` responses; the
    #: actual hint is jittered over [0.5x, 1.5x) so a burst of refused
    #: clients does not retry in lockstep.
    retry_after: float = 0.25
    health_interval: float = 0.5
    hello_timeout: float = 60.0
    stats_timeout: float = 5.0
    worker_join_timeout: float = 5.0
    #: Longest accepted client request line, in bytes.
    max_line: int = 8 * 1024 * 1024
    max_frame: int = MAX_FRAME
    #: Shared artifact-store directory (``None``: a cluster-owned
    #: temporary directory, removed at shutdown).
    artifact_dir: str | None = None
    #: Keyword arguments for each worker's ``Session``.
    session: dict[str, Any] = field(default_factory=dict)
    #: Enable span tracing in every worker process (spans ship back in
    #: response frames and merge into the frontend's tracer).
    trace: bool = False
    #: Slow-query log threshold (seconds) applied in every worker.
    slow_query: float | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")


class _Pending:
    """One request waiting in a worker's FIFO."""

    __slots__ = (
        "frame", "key", "future", "retried", "control",
        "created", "sent", "sent_wall_us",
    )

    def __init__(self, frame: dict, key: str | None,
                 future: asyncio.Future, control: bool = False) -> None:
        self.frame = frame
        self.key = key
        self.future = future
        #: Monotonic enqueue time (queue-wait metric baseline).
        self.created = time.perf_counter()
        #: Monotonic + wall time the frame hit the link (RTT baseline).
        self.sent = 0.0
        self.sent_wall_us = 0
        #: Set once the request has been forwarded after a crash;
        #: a second crash fails it cleanly instead of looping.
        self.retried = False
        #: Control frames (stats probes) are never forwarded.
        self.control = control


class _WorkerHandle:
    """Frontend-side state for one live worker link."""

    def __init__(self, worker_id: int, process, reader, writer, pid) -> None:
        self.id = worker_id
        self.process = process
        self.reader = reader
        self.writer = writer
        self.pid = pid
        self.queue: asyncio.Queue = asyncio.Queue()
        self.inflight: deque[_Pending] = deque()
        self.served = 0
        self.dead = False
        self.pump_task: asyncio.Task | None = None
        self.reader_task: asyncio.Task | None = None

    def outstanding(self) -> int:
        return self.queue.qsize() + len(self.inflight)

    def submit(self, entry: _Pending) -> None:
        self.queue.put_nowait(entry)


class _ClientConn:
    __slots__ = ("writer", "busy")

    def __init__(self, writer) -> None:
        self.writer = writer
        self.busy = False


class ClusterServer:
    """Sharded multi-process analysis service (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: ClusterConfig | None = None,
    ) -> None:
        self.request_host = host
        self.request_port = port
        self.config = config if config is not None else ClusterConfig()
        self.host = host
        self.port: int | None = None
        self.served = 0
        self.errors = 0
        self.store: ArtifactStore | None = None
        self._token = secrets.token_hex(16)
        self._handles: dict[int, _WorkerHandle] = {}
        self._ring = HashRing()
        self._restarts: dict[int, int] = {}
        self._procs: list = []
        self._pending_hello: dict[int, asyncio.Future] = {}
        self._conns: set[_ClientConn] = set()
        self._seen_keys: dict[str, None] = {}
        self._rr = 0
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._internal: asyncio.base_events.Server | None = None
        self._internal_port: int | None = None
        self._health_task: asyncio.Task | None = None
        self._bg_tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    # --- lifecycle --------------------------------------------------------
    async def run(
        self,
        on_ready: Callable[["ClusterServer"], None] | None = None,
        install_signals: bool = False,
    ) -> int:
        """Bring the cluster up, serve until drained, tear down; 0."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self.store = ArtifactStore.create(self.config.artifact_dir)
        started = False
        try:
            self._internal = await asyncio.start_server(
                self._handle_worker_conn, "127.0.0.1", 0
            )
            self._internal_port = self._internal.sockets[0].getsockname()[1]
            await asyncio.gather(
                *(self._launch_worker(w) for w in range(self.config.workers))
            )
            self._server = await asyncio.start_server(
                self._handle_client,
                self.request_host,
                self.request_port,
                limit=self.config.max_line,
            )
            bound = self._server.sockets[0].getsockname()
            self.host, self.port = bound[0], bound[1]
            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    with contextlib.suppress(NotImplementedError, RuntimeError):
                        self._loop.add_signal_handler(signum, self.begin_drain)
            self._health_task = asyncio.ensure_future(self._health_loop())
            started = True
        finally:
            if not started:
                await self._teardown(force=True)
        if on_ready is not None:
            on_ready(self)
        await self._stopping.wait()
        return await self._teardown()

    def begin_drain(self) -> None:
        """Stop accepting, finish in-flight work, then exit (idempotent;
        safe to call from signal handlers on the loop thread)."""
        if self._draining:
            return
        self._draining = True
        # Idle connections are parked in readline(); closing them is
        # the only way they learn the fleet is going away. Busy ones
        # finish their current request first (the handler loop checks
        # the drain flag after each response).
        for conn in list(self._conns):
            if not conn.busy:
                conn.writer.close()
        if self._stopping is not None:
            self._stopping.set()

    async def _teardown(self, force: bool = False) -> int:
        self._draining = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if not force and self._loop is not None:
            deadline = self._loop.time() + self.config.drain_timeout
            while (
                any(conn.busy for conn in self._conns)
                and self._loop.time() < deadline
            ):
                await asyncio.sleep(0.02)
        for conn in list(self._conns):
            with contextlib.suppress(Exception):
                conn.writer.close()
        if self._health_task is not None:
            self._health_task.cancel()
        for task in list(self._bg_tasks):
            task.cancel()
        handles = list(self._handles.values())
        self._handles.clear()
        for handle in handles:
            for task in (handle.pump_task, handle.reader_task):
                if task is not None:
                    task.cancel()
            # EOF on the link is the workers' graceful-shutdown signal.
            with contextlib.suppress(Exception):
                handle.writer.close()
        await self._join_processes()
        if self._internal is not None:
            self._internal.close()
            with contextlib.suppress(Exception):
                await self._internal.wait_closed()
        if self.store is not None:
            self.store.close()
        return 0

    async def _join_processes(self) -> None:
        if self._loop is None:
            return
        procs = [p for p in self._procs if p.is_alive()]
        deadline = self._loop.time() + self.config.worker_join_timeout
        while any(p.is_alive() for p in procs) and self._loop.time() < deadline:
            await asyncio.sleep(0.05)
        for proc in procs:
            if proc.is_alive():  # straggler past the drain deadline
                proc.terminate()
        await asyncio.sleep(0)
        for proc in procs:
            if proc.is_alive():
                with contextlib.suppress(Exception):
                    proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - terminate() ignored
                with contextlib.suppress(Exception):
                    proc.kill()
        for proc in self._procs:
            with contextlib.suppress(Exception):
                proc.join(timeout=0.1)

    # --- worker pool ------------------------------------------------------
    async def _launch_worker(self, worker_id: int) -> None:
        future = self._loop.create_future()
        self._pending_hello[worker_id] = future
        process = spawn_worker(
            worker_id,
            "127.0.0.1",
            self._internal_port,
            self._token,
            self.config.session,
            str(self.store.directory),
            trace_enabled=self.config.trace,
            slow_query=self.config.slow_query,
        )
        self._procs.append(process)
        try:
            reader, writer, hello = await asyncio.wait_for(
                future, self.config.hello_timeout
            )
        except Exception:
            self._pending_hello.pop(worker_id, None)
            with contextlib.suppress(Exception):
                process.terminate()
            raise
        handle = _WorkerHandle(
            worker_id, process, reader, writer, hello.get("pid")
        )
        handle.pump_task = asyncio.ensure_future(self._pump(handle))
        handle.reader_task = asyncio.ensure_future(self._read_responses(handle))
        self._handles[worker_id] = handle
        self._ring.add(worker_id)

    async def _handle_worker_conn(self, reader, writer) -> None:
        """Accept one worker dialing back; match it to its launch."""
        try:
            hello = await asyncio.wait_for(
                read_frame(reader, self.config.max_frame), 10.0
            )
        except (asyncio.TimeoutError, ProtocolError):
            hello = None
        if (
            not isinstance(hello, dict)
            or hello.get("t") != "hello"
            or hello.get("token") != self._token
        ):
            writer.close()
            return
        future = self._pending_hello.pop(hello.get("worker"), None)
        if future is None or future.done():
            writer.close()
            return
        future.set_result((reader, writer, hello))

    async def _pump(self, handle: _WorkerHandle) -> None:
        """Feed one worker's FIFO down its framed link."""
        try:
            while True:
                entry = await handle.queue.get()
                try:
                    data = frame_bytes(entry.frame, self.config.max_frame)
                except ProtocolError as exc:
                    # Oversized toward the worker: refuse this request
                    # only, the link itself is fine.
                    self._finish(entry, {"ok": False, "error": str(exc)})
                    continue
                obs_metrics.REGISTRY.observe(
                    "repro_cluster_queue_wait_seconds",
                    time.perf_counter() - entry.created,
                    worker=str(handle.id),
                )
                entry.sent = time.perf_counter()
                entry.sent_wall_us = time.time_ns() // 1000
                handle.inflight.append(entry)
                handle.writer.write(data)
                await handle.writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            self._worker_died(handle)

    async def _read_responses(self, handle: _WorkerHandle) -> None:
        """Match one worker's in-order responses to its FIFO."""
        try:
            while True:
                frame = await read_frame(handle.reader, self.config.max_frame)
                if frame is None:
                    break
                if frame.get("t") != "res" or not handle.inflight:
                    continue  # stray frame: ignore rather than desync
                entry = handle.inflight.popleft()
                handle.served += 1
                if entry.sent:
                    rtt = time.perf_counter() - entry.sent
                    obs_metrics.REGISTRY.observe(
                        "repro_cluster_link_rtt_seconds", rtt,
                        worker=str(handle.id),
                    )
                    self._note_link(handle, entry, rtt, frame.get("spans"))
                payload = frame.get("payload")
                if not isinstance(payload, dict):
                    payload = {"ok": False, "error": "malformed worker response"}
                self._finish(entry, payload)
        except asyncio.CancelledError:
            raise
        except (ProtocolError, ConnectionError, OSError):
            pass
        self._worker_died(handle)

    @staticmethod
    def _finish(entry: _Pending, response: dict) -> None:
        if not entry.future.done():
            entry.future.set_result(response)

    def _note_link(
        self, handle: _WorkerHandle, entry: _Pending, rtt: float, spans
    ) -> None:
        """Merge a worker's shipped spans and synthesize the link span
        (send -> response) on the frontend's own timeline."""
        tracer = obs_trace.active()
        if tracer is None:
            return
        if isinstance(spans, list):
            tracer.ingest(spans)
        args: dict[str, Any] = {"worker": handle.id}
        trace_id = entry.frame.get("trace")
        if trace_id is not None:
            args["trace"] = trace_id
        tracer.record({
            "name": "cluster.link",
            "cat": "cluster",
            "ph": "X",
            "ts": entry.sent_wall_us,
            "dur": int(rtt * 1e6),
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
            "args": args,
        })

    def _retry_hint(self) -> float:
        """Jittered ``retry_after``: uniform over [0.5x, 1.5x) of the
        configured base, so refused clients don't retry in lockstep."""
        return round(self.config.retry_after * (0.5 + random.random()), 4)

    def _worker_died(self, handle: _WorkerHandle) -> None:
        """Rebalance away from a dead worker and respawn its slot."""
        if handle.dead:
            return
        handle.dead = True
        if self._handles.get(handle.id) is handle:
            del self._handles[handle.id]
        self._ring.remove(handle.id)
        current = asyncio.current_task()
        for task in (handle.pump_task, handle.reader_task):
            if task is not None and task is not current:
                task.cancel()
        with contextlib.suppress(Exception):
            handle.writer.close()
        with contextlib.suppress(Exception):
            handle.process.join(timeout=0)
        entries = list(handle.inflight)
        handle.inflight.clear()
        while True:
            try:
                entries.append(handle.queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        for entry in entries:
            self._redispatch(entry)
        if not self._draining:
            self._restarts[handle.id] = self._restarts.get(handle.id, 0) + 1
            task = asyncio.ensure_future(self._respawn(handle.id))
            self._bg_tasks.add(task)
            task.add_done_callback(self._bg_tasks.discard)

    def _redispatch(self, entry: _Pending) -> None:
        """Forward a crashed worker's request to the resharded owner —
        once; a second crash fails it cleanly."""
        if entry.future.done():
            return  # deadline already answered the client
        if entry.control:
            self._finish(entry, {"ok": False, "error": "worker connection lost"})
            return
        if entry.retried:
            self._finish(
                entry,
                {"ok": False, "error": "analysis worker crashed twice on this request"},
            )
            return
        entry.retried = True
        handle = self._route(entry.key)
        if handle is None:
            self._finish(
                entry,
                {"ok": False, "error": "analysis worker crashed and no replacement is available"},
            )
            return
        if handle.outstanding() >= self.config.queue_limit:
            self._finish(
                entry,
                {
                    "ok": False,
                    "error": "overloaded",
                    "retry_after": self._retry_hint(),
                },
            )
            return
        handle.submit(entry)

    async def _respawn(self, worker_id: int) -> None:
        for attempt in range(3):
            if self._draining:
                return
            try:
                await self._launch_worker(worker_id)
            except Exception:  # noqa: BLE001 - keep trying, then give up
                await asyncio.sleep(0.2 * (attempt + 1))
            else:
                return
        # The slot stays down; stats shows fewer alive workers.

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval)
            for handle in list(self._handles.values()):
                if not handle.process.is_alive():
                    self._worker_died(handle)

    # --- request routing --------------------------------------------------
    def _route(self, key: str | None) -> _WorkerHandle | None:
        if key is not None:
            worker_id = self._ring.locate(key)
            return None if worker_id is None else self._handles.get(worker_id)
        alive = sorted(self._handles)
        if not alive:
            return None
        self._rr = (self._rr + 1) % len(alive)
        return self._handles[alive[self._rr]]

    def _note_key(self, key: str) -> None:
        self._seen_keys.pop(key, None)
        self._seen_keys[key] = None
        while len(self._seen_keys) > 1024:
            self._seen_keys.pop(next(iter(self._seen_keys)))

    async def _request(self, payload: dict, key: str | None) -> dict:
        handle = self._route(key)
        if handle is None:
            return {"ok": False, "error": "no analysis workers available"}
        if handle.outstanding() >= self.config.queue_limit:
            return {
                "ok": False,
                "error": "overloaded",
                "retry_after": self._retry_hint(),
            }
        frame = {"t": "req", "payload": payload}
        trace_id = obs_trace.current_trace_id()
        if trace_id is not None:
            frame["trace"] = trace_id
        entry = _Pending(frame, key, self._loop.create_future())
        handle.submit(entry)
        timeout = self.config.request_timeout
        dispatch_span = obs_trace.span(
            "cluster.dispatch", cat="cluster", worker=handle.id
        )
        try:
            with dispatch_span:
                if timeout is None:
                    return await entry.future
                return await asyncio.wait_for(entry.future, timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future: the reader task will drop
            # the straggler's eventual response on the floor.
            return {
                "ok": False,
                "error": f"deadline exceeded after {timeout:g}s; request abandoned",
            }

    async def _submit_control(
        self, handle: _WorkerHandle, frame: dict
    ) -> dict | None:
        entry = _Pending(frame, None, self._loop.create_future(), control=True)
        handle.submit(entry)
        try:
            return await asyncio.wait_for(entry.future, self.config.stats_timeout)
        except asyncio.TimeoutError:
            return None  # busy worker: report frontend-side state only

    # --- client protocol --------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        conn = _ClientConn(writer)
        self._conns.add(conn)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the buffer limit: answer, then close
                    # (the stream cannot be resynchronized).
                    conn.busy = True
                    await self._send(
                        writer,
                        self._client_error(
                            f"request line exceeds {self.config.max_line} bytes", None
                        ),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # client EOF
                text = line.decode("utf-8", "replace").strip()
                if not text:
                    continue
                conn.busy = True
                try:
                    response, stop = await self._dispatch_line(text)
                finally:
                    conn.busy = False
                if not await self._send(writer, response):
                    break
                if stop or self._draining:
                    break
        finally:
            self._conns.discard(conn)
            with contextlib.suppress(Exception):
                writer.close()

    async def _send(self, writer, response: dict) -> bool:
        try:
            writer.write(
                (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
            )
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    def _client_error(self, message: str, req_id) -> dict:
        self.errors += 1
        return {"ok": False, "id": req_id, "error": message}

    async def _dispatch_line(self, text: str) -> tuple[dict, bool]:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            return (
                self._client_error(f"request line is not valid JSON: {exc}", None),
                False,
            )
        if not isinstance(payload, dict):
            return (
                self._client_error("request line must be a JSON object", None),
                False,
            )
        if "op" in payload:
            return await self._handle_op(payload)
        req_id = None
        if "request" in payload:
            req_id = payload.get("id")
            payload = payload["request"]
            if not isinstance(payload, dict):
                return (
                    self._client_error("'request' must be a JSON object", req_id),
                    False,
                )
        key = routing_key(payload)
        if key is not None:
            self._note_key(key)
        kind = str(payload.get("kind"))
        started = time.perf_counter()
        with obs_trace.request_scope(), obs_trace.span(
            "cluster.request", cat="cluster", kind=kind
        ):
            response = dict(await self._request(payload, key))
        ok = bool(response.get("ok"))
        registry = obs_metrics.REGISTRY
        registry.observe(
            "repro_cluster_request_seconds",
            time.perf_counter() - started,
            kind=kind,
        )
        registry.inc(
            "repro_cluster_requests_total",
            kind=kind, ok="true" if ok else "false",
        )
        response["id"] = req_id
        if ok:
            self.served += 1
        else:
            self.errors += 1
        return response, False

    async def _handle_op(self, payload: dict) -> tuple[dict, bool]:
        op = payload.get("op")
        req_id = payload.get("id")
        if op == "ping":
            return {
                "ok": True,
                "id": req_id,
                "pong": True,
                "version": repro.__version__,
                "workers": len(self._handles),
            }, False
        if op == "stats":
            return await self._stats_op(req_id), False
        if op == "metrics":
            return await self._metrics_op(req_id), False
        if op == "shutdown":
            self.begin_drain()
            return {"ok": True, "id": req_id, "bye": True}, True
        return self._client_error(f"unknown op {op!r}", req_id), False

    async def _stats_op(self, req_id) -> dict:
        handles = sorted(self._handles.items())
        probes: list[dict | None] = []
        if handles:
            probes = await asyncio.gather(
                *(
                    self._submit_control(handle, {"t": "op", "op": "stats"})
                    for _, handle in handles
                )
            )
        rows = []
        for (worker_id, handle), probe in zip(handles, probes):
            row = {
                "worker": worker_id,
                "pid": handle.pid,
                "alive": handle.process.is_alive(),
                "queue_depth": handle.queue.qsize(),
                "inflight": len(handle.inflight),
                "answered": handle.served,
                "restarts": self._restarts.get(worker_id, 0),
                "session": None,
            }
            if isinstance(probe, dict) and probe.get("ok"):
                row["served"] = probe.get("served")
                row["errors"] = probe.get("errors")
                row["session"] = probe.get("session")
            rows.append(row)
        # Slots mid-restart have no handle yet; surface them instead of
        # silently shrinking the table.
        present = {worker_id for worker_id, _handle in handles}
        for worker_id in range(self.config.workers):
            if worker_id in present:
                continue
            rows.append({
                "worker": worker_id,
                "pid": None,
                "alive": False,
                "restarting": True,
                "queue_depth": 0,
                "inflight": 0,
                "answered": 0,
                "restarts": self._restarts.get(worker_id, 0),
                "session": None,
            })
        rows.sort(key=lambda row: row["worker"])
        shard_map = {
            key: self._ring.locate(key) for key in sorted(self._seen_keys)
        }
        return {
            "ok": True,
            "id": req_id,
            "server": {
                "served": self.served,
                "errors": self.errors,
                "workers": len(self._handles),
                "configured_workers": self.config.workers,
                "restarts": sum(self._restarts.values()),
                "queue_limit": self.config.queue_limit,
                "request_timeout": self.config.request_timeout,
                "draining": self._draining,
            },
            "cluster": {
                "workers": rows,
                "shard_map": shard_map,
                "store": self.store.stats() if self.store is not None else None,
            },
        }

    async def _metrics_op(self, req_id) -> dict:
        """Scrape every worker's registry and aggregate with our own.

        Histograms share one fixed bucket ladder, so cross-worker
        aggregation is a per-bucket sum; counters and gauges add.
        """
        handles = sorted(self._handles.items())
        probes: list[dict | None] = []
        if handles:
            probes = await asyncio.gather(
                *(
                    self._submit_control(handle, {"t": "op", "op": "metrics"})
                    for _, handle in handles
                )
            )
        payloads = [obs_metrics.REGISTRY.to_payload()]
        per_worker = []
        slow = list(obs_trace.SLOW_QUERIES.entries())
        for (worker_id, _handle), probe in zip(handles, probes):
            if not (isinstance(probe, dict) and probe.get("ok")):
                continue
            worker_metrics = probe.get("metrics")
            if isinstance(worker_metrics, dict):
                payloads.append(worker_metrics)
                per_worker.append({
                    "worker": worker_id,
                    "pid": probe.get("pid"),
                    "metrics": worker_metrics,
                })
            for entry in probe.get("slow_queries") or ():
                if isinstance(entry, dict):
                    slow.append(dict(entry, worker=worker_id))
        merged = obs_metrics.merge_payloads(payloads)
        return {
            "ok": True,
            "id": req_id,
            "metrics": merged,
            "text": obs_metrics.render_prometheus(merged),
            "workers": per_worker,
            "slow_queries": slow,
        }

    # --- threaded embedding (tests, examples) -----------------------------
    def start_in_thread(self, timeout: float = 120.0) -> tuple[str, int]:
        """Run the cluster on a dedicated event-loop thread; returns the
        bound (host, port) once it accepts clients."""
        ready = threading.Event()

        def _main() -> None:
            asyncio.run(self.run(on_ready=lambda _server: ready.set()))

        self._thread = threading.Thread(
            target=_main, name="repro-cluster", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("cluster did not come up in time")
        return self.host, self.port

    def stop_threaded(self, timeout: float = 60.0) -> None:
        """Drain and join a ``start_in_thread`` cluster."""
        if self._thread is None:
            return
        if self._loop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.begin_drain)
        self._thread.join(timeout)


def render_stats(stats: dict) -> str:
    """Human-readable rendering of the cluster ``stats`` op response."""
    server = stats.get("server", {})
    cluster = stats.get("cluster", {})
    lines = [
        "cluster: {workers} worker(s) alive / {configured} configured, "
        "{served} served, {errors} errors, {restarts} restart(s)".format(
            workers=server.get("workers", 0),
            configured=server.get("configured_workers", 0),
            served=server.get("served", 0),
            errors=server.get("errors", 0),
            restarts=server.get("restarts", 0),
        )
    ]
    for row in cluster.get("workers", ()):
        if row.get("restarting"):
            lines.append(
                "  worker {worker} (restarting): restarts={restarts}".format(
                    worker=row.get("worker"), restarts=row.get("restarts"),
                )
            )
            continue
        session = row.get("session") or {}
        query_cache = session.get("query_cache") or {}
        hit_rate = query_cache.get("hit_rate")
        lines.append(
            "  worker {worker} (pid {pid}): queue={queue} inflight={inflight} "
            "served={served} restarts={restarts} cache-hit-rate={rate}".format(
                worker=row.get("worker"),
                pid=row.get("pid"),
                queue=row.get("queue_depth"),
                inflight=row.get("inflight"),
                served=row.get("served", row.get("answered")),
                restarts=row.get("restarts"),
                rate="n/a" if hit_rate is None else f"{hit_rate:.2f}",
            )
        )
    shard_map = cluster.get("shard_map") or {}
    if shard_map:
        assignments = ", ".join(
            f"{key}->w{worker}" for key, worker in sorted(shard_map.items())
        )
        lines.append(f"  shards: {assignments}")
    store = cluster.get("store") or {}
    if store:
        lines.append(
            "  store: {entries} artifact(s), {size} bytes at {where}".format(
                entries=store.get("entries"),
                size=store.get("bytes"),
                where=store.get("directory"),
            )
        )
    return "\n".join(lines)
