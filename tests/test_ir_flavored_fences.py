"""Flavored-fence IR round-tripping and default-output goldens.

Satellite coverage for the arch PR: every registered flavor survives
the mini-C ``fence <flavor>;`` statement -> frontend lowering ->
verifier -> printer chain, and the *default* (unflavored, x86 FULL)
pipeline output is pinned byte-identical to the pre-arch goldens under
``tests/data/ir/``.
"""

from pathlib import Path

import pytest

from repro.arch.backend import BACKENDS
from repro.core.pipeline import PipelineVariant, place_fences
from repro.frontend import compile_source
from repro.frontend.parser import parse
from repro.ir.builder import IRBuilder
from repro.ir.function import Program
from repro.ir.instructions import Fence, FenceKind, FenceOrigin
from repro.ir.printer import format_instruction, format_program
from repro.ir.verifier import VerificationError, verify_program
from repro.memmodel.litmus import LITMUS_TESTS

DATA = Path(__file__).parent / "data" / "ir"

ALL_FLAVORS = sorted(
    {f.name for backend in BACKENDS.values() for f in backend.flavors}
)


def _flavored_source(flavor: str | None) -> str:
    stmt = "fence;" if flavor is None else f"fence {flavor};"
    return (
        "global int x;\n"
        f"fn f(tid) {{ x = 1; {stmt} x = 2; }}\n"
        "thread f(0);\n"
    )


# --- round trip over every registered flavor ---------------------------------


@pytest.mark.parametrize("flavor", ALL_FLAVORS)
def test_flavor_roundtrip_source_to_printed_ir(flavor):
    """mini-C ``fence <flavor>;`` -> lowering -> verifier -> printer
    keeps the flavor intact, for every flavor of every backend."""
    program = compile_source(
        _flavored_source(flavor), "t", include_manual_fences=True
    )
    verify_program(program)
    fences = [
        inst
        for inst in program.functions["f"].instructions()
        if isinstance(inst, Fence)
    ]
    assert len(fences) == 1
    assert fences[0].flavor == flavor
    assert fences[0].kind is FenceKind.FULL
    assert fences[0].origin is FenceOrigin.MANUAL
    assert f"fence.full[{flavor}] ; manual" in format_program(program)


@pytest.mark.parametrize("flavor", ALL_FLAVORS)
def test_flavor_roundtrip_builder_to_printer(flavor):
    builder = IRBuilder("g")
    builder.new_block("entry")
    builder.fence(FenceKind.FULL, FenceOrigin.INSERTED, flavor=flavor)
    builder.ret()
    func = builder.build()
    fence = func.entry.instructions[0]
    assert format_instruction(fence) == f"fence.full[{flavor}] ; inserted"
    assert fence.mnemonic() == f"fence.full[{flavor}]"


def test_parse_keeps_flavor_and_bare_fence_stays_unflavored():
    module = parse(_flavored_source("lwsync"))
    stmts = [
        s for s in module.functions[0].body.stmts
        if type(s).__name__ == "FenceStmt"
    ]
    assert [s.flavor for s in stmts] == ["lwsync"]

    program = compile_source(
        _flavored_source(None), "t", include_manual_fences=True
    )
    fences = [
        inst
        for inst in program.functions["f"].instructions()
        if isinstance(inst, Fence)
    ]
    assert fences[0].flavor is None
    assert "fence.full ; manual" in format_program(program)


def test_stripped_compilation_drops_flavored_fences_too():
    program = compile_source(_flavored_source("sync"), "t")
    assert not any(
        isinstance(inst, Fence)
        for inst in program.functions["f"].instructions()
    )


# --- verifier gates ----------------------------------------------------------


def _one_fence_program(fence: Fence):
    builder = IRBuilder("f")
    builder.new_block("entry")
    builder.current.append(fence)
    builder.ret()
    func = builder.build()
    program = Program("t")
    program.add_function(func)
    return program


def test_verifier_rejects_flavored_compiler_directive():
    fence = Fence(FenceKind.COMPILER, FenceOrigin.INSERTED)
    fence.flavor = "lwsync"
    with pytest.raises(VerificationError, match="cannot carry a fence flavor"):
        verify_program(_one_fence_program(fence))


def test_verifier_rejects_empty_flavor():
    fence = Fence(FenceKind.FULL, FenceOrigin.INSERTED)
    fence.flavor = ""
    with pytest.raises(VerificationError, match="non-empty string"):
        verify_program(_one_fence_program(fence))


# --- default-output goldens --------------------------------------------------


@pytest.mark.parametrize("name", ["mp", "dekker", "mp-pointers"])
def test_default_x86_fenced_ir_is_byte_identical_to_pre_arch_golden(name):
    """The arch subsystem must not perturb the default pipeline: the
    address+control placement on x86-TSO prints byte-for-byte what it
    printed before flavors existed (goldens captured at the pre-arch
    commit)."""
    test = LITMUS_TESTS[name]
    program = test.compile()
    place_fences(program, PipelineVariant.ADDRESS_CONTROL)
    golden = (DATA / f"{name}-address_control-x86-tso.golden").read_text(
        encoding="utf-8"
    )
    assert format_program(program) + "\n" == golden
