"""The differential fence-validation oracle.

For one program the oracle compares, on a weak machine model:

* the **unfenced** program — does the weak model show observations SC
  cannot produce at all?
* the **every-delay** placement (a full fence before every access, see
  :func:`repro.core.fence_min.plan_every_delay_fences`) — the
  conservative upper bound. If even this cannot restore SC, no
  placement can, and the program is outside any placement's contract.
* each requested **detection variant's** placement.

The soundness criterion is the paper's own (Section 5): a placement is
good when the weak-model observation set of the fenced program equals
the SC observation set of the original. A *violation* is recorded when
the program is well-synchronized under its intended marking (the
legacy-DRF precondition), the every-delay placement restores SC, but a
variant's placement does not.

``vanilla`` is the deliberately-disabled detector — no acquires at all,
so every ordering that is not into a write is pruned. It exists to
prove the oracle can fire: a fuzzer whose oracle never reports is
indistinguishable from a broken one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fence_min import apply_plan, plan_every_delay_fences
from repro.core.machine_models import MemoryModel
from repro.frontend import compile_source
from repro.ir.function import Program
from repro.memmodel.drf import check_drf
from repro.memmodel.litmus import sync_marking_for_globals
from repro.registry.models import EXPLORERS, weak_explorer_for
from repro.registry.variants import (
    detection_variant_keys,
    get_variant,
    trusted_variant_keys,
)

def __getattr__(name: str):
    # DETECTION_VARIANTS / TRUSTED_VARIANTS are computed from the live
    # registry on every access, so detectors registered after this
    # module was imported are picked up immediately.
    #
    # DETECTION_VARIANTS: fence-placement strategies the oracle can
    # differentiate (null detectors listed first). TRUSTED_VARIANTS:
    # variants whose placements the paper's theory claims sound for
    # legacy-DRF programs (pensieve enforces everything;
    # address+control detects every acquire by Theorem 3.1).
    if name == "DETECTION_VARIANTS":
        return detection_variant_keys()
    if name == "TRUSTED_VARIANTS":
        return trusted_variant_keys()
    # Deprecated: the weak-explorer dict moved into the model registry.
    if name == "WEAK_EXPLORERS":
        from repro.api._compat import weak_explorers

        return weak_explorers()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def tso_breaks_unfenced(
    source: str, name: str, max_states: int = 1_000_000
) -> bool | None:
    """Does the unfenced program show non-SC observations on x86-TSO?

    Used to stamp honest ``tso_breaks_unfenced`` metadata onto emitted
    litmus snippets — a shrunk counterexample (or one found on another
    model) need not break the same way the original did. Returns None
    when either exploration blows the state bound.
    """
    sc_cls, tso_cls = EXPLORERS.get("sc"), EXPLORERS.get("x86-tso")
    sc = sc_cls(compile_source(source, name), max_states=max_states).explore()
    tso = tso_cls(compile_source(source, name), max_states=max_states).explore()
    if not (sc.complete and tso.complete):
        return None
    return tso.observation_sets() != sc.observation_sets()


def place_every_delay(program: Program) -> tuple[int, int]:
    """Insert the every-delay placement; returns (full, compiler) counts."""
    full = 0
    for func in program.functions.values():
        plan = plan_every_delay_fences(func)
        apply_plan(func, plan)
        full += plan.full_count
    return full, 0


def place_detected_fences(
    program: Program,
    variant: str,
    model: MemoryModel,
    backend=None,
    synthesis: str = "greedy",
) -> tuple[int, int]:
    """Insert ``variant``'s placement; returns (full, compiler) counts.

    ``variant`` is a detection-variant registry key (one of
    :data:`DETECTION_VARIANTS`). The registry entry carries the whole
    strategy — including which pipeline configuration a null detector
    overrides — so the variant under test is threaded through here
    instead of being hardcoded per special case. With an arch
    ``backend`` the fences go in *flavored* (cheapest sufficient flavor
    per cut), so the differential exploration validates the flavor
    selection itself, not just the fence positions.
    ``synthesis="optimal"`` places :mod:`repro.synth`'s min-cost plans
    instead of the greedy ones, putting the optimizer itself under the
    oracle's soundness contract.
    """
    analysis = get_variant(variant).place(
        program, model, backend=backend, synthesis=synthesis
    )
    if synthesis == "optimal" and analysis.lowered_plans is not None:
        # The greedy FencePlans no longer describe what went in; count
        # the optimizer's lowered placements instead.
        plans = analysis.lowered_plans.values()
        return (
            sum(p.full_count for p in plans),
            sum(p.compiler_count for p in plans),
        )
    return analysis.full_fence_count, analysis.compiler_fence_count


@dataclass(frozen=True)
class VariantVerdict:
    """One variant's differential result on one program."""

    variant: str
    full_fences: int
    compiler_fences: int
    weak_outcomes: int
    restores_sc: bool
    # Fewer full fences than the every-delay upper bound (precision).
    fences_saved: int
    # Soundness contract applied (DRF + every-delay restored SC) and
    # this placement failed it.
    violation: bool


@dataclass(frozen=True)
class OracleReport:
    """The full differential verdict for one program."""

    name: str
    model: str
    sc_outcomes: int
    weak_outcomes_unfenced: int
    weak_breaks_unfenced: bool
    well_synchronized: bool
    drf_complete: bool
    drf_races: int
    every_delay_fences: int
    full_restores_sc: bool
    verdicts: tuple[VariantVerdict, ...]
    complete: bool = True
    skipped: str | None = None

    @property
    def violations(self) -> tuple[VariantVerdict, ...]:
        return tuple(v for v in self.verdicts if v.violation)

    @property
    def contract_applies(self) -> bool:
        """Was the soundness contract in force for this program?"""
        return self.complete and self.well_synchronized and self.full_restores_sc


def _skipped(name: str, model: str, reason: str) -> OracleReport:
    return OracleReport(
        name=name,
        model=model,
        sc_outcomes=0,
        weak_outcomes_unfenced=0,
        weak_breaks_unfenced=False,
        well_synchronized=False,
        drf_complete=False,
        drf_races=0,
        every_delay_fences=0,
        full_restores_sc=False,
        verdicts=(),
        complete=False,
        skipped=reason,
    )


def run_oracle(
    source: str,
    name: str,
    variants: tuple[str, ...] | None = None,
    model: str = "x86-tso",
    sync_globals: frozenset[str] = frozenset(),
    max_states: int = 1_000_000,
    drf_max_traces: int = 600,
    explore_unfenced: bool = True,
    synthesis: str = "greedy",
) -> OracleReport:
    """Run the full differential check on one mini-C source text.

    Fence insertion mutates IR, so every placement explores a freshly
    compiled copy of ``source``; the unfenced copy is shared between
    the SC reference exploration and the DRF trace check.

    ``explore_unfenced=False`` skips the unfenced weak-model
    exploration — it informs reporting but plays no part in the
    soundness verdict, and the shrinker's predicate (which re-runs this
    oracle per candidate) drops it for speed. The report then records
    ``weak_breaks_unfenced=False`` / ``weak_outcomes_unfenced=0``.
    """
    if variants is None:  # default: the live trusted set
        variants = trusted_variant_keys()
    explorer_cls, machine = weak_explorer_for(model)
    # Lower variant placements through the model's arch backend only
    # when its explorer honors flavors (arm/power): there a too-weak
    # flavor choice surfaces as a soundness violation. Flavor-blind
    # explorers (TSO/PSO) keep generic-FULL placements — exploring
    # e.g. an sfence as if it were an mfence would validate flavor
    # selections the explorer cannot model. The every-delay upper
    # bound stays generic-FULL by design.
    from repro.registry.models import check_backend_for_model

    backend = check_backend_for_model(model)

    unfenced = compile_source(source, name)
    sc = EXPLORERS.get("sc")(unfenced, max_states=max_states).explore()
    if not sc.complete:
        return _skipped(name, model, "SC state space exceeded max_states")
    sc_obs = sc.observation_sets()

    if explore_unfenced:
        weak = explorer_cls(
            compile_source(source, name), max_states=max_states
        ).explore()
        if not weak.complete:
            return _skipped(name, model, "weak state space exceeded max_states")
        weak_obs = weak.observation_sets()
    else:
        weak_obs = sc_obs

    marking = sync_marking_for_globals(
        unfenced, sync_globals & set(unfenced.globals)
    )
    drf = check_drf(unfenced, marking, max_traces=drf_max_traces)

    full_fenced = compile_source(source, name)
    every_delay_fences, _ = place_every_delay(full_fenced)
    full_weak = explorer_cls(full_fenced, max_states=max_states).explore()
    if not full_weak.complete:
        return _skipped(name, model, "fenced state space exceeded max_states")
    full_restores = full_weak.observation_sets() == sc_obs

    contract = drf.is_race_free and full_restores
    verdicts = []
    for variant in variants:
        fenced = compile_source(source, name)
        full, compiler = place_detected_fences(
            fenced, variant, machine, backend, synthesis=synthesis
        )
        fenced_weak = explorer_cls(fenced, max_states=max_states).explore()
        if not fenced_weak.complete:
            return _skipped(
                name, model, f"{variant} fenced state space exceeded max_states"
            )
        fenced_obs = fenced_weak.observation_sets()
        restores = fenced_obs == sc_obs
        verdicts.append(
            VariantVerdict(
                variant=variant,
                full_fences=full,
                compiler_fences=compiler,
                weak_outcomes=len(fenced_obs),
                restores_sc=restores,
                fences_saved=every_delay_fences - full,
                violation=contract and not restores,
            )
        )

    return OracleReport(
        name=name,
        model=model,
        sc_outcomes=len(sc_obs),
        weak_outcomes_unfenced=len(weak_obs) if explore_unfenced else 0,
        weak_breaks_unfenced=weak_obs != sc_obs,
        well_synchronized=drf.is_race_free,
        drf_complete=drf.complete,
        drf_races=len(drf.races),
        every_delay_fences=every_delay_fences,
        full_restores_sc=full_restores,
        verdicts=tuple(verdicts),
    )
