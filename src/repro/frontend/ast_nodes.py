"""AST for the mini-C source language.

The language is the paper's multi-threaded "while" language with
pointers (Fig. 3), extended with the features the evaluation workloads
need: global/local arrays, atomic read-modify-writes (``cas``,
``xchg``, ``fadd``), function calls, explicit ``fence``/``cfence``
statements for manual placements, and ``observe`` for litmus outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass(frozen=True)
class Node:
    """Base AST node; ``line`` supports error messages."""

    line: int


# --- expressions -----------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class Num(Expr):
    value: int


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference (global, local, or parameter)."""

    name: str


@dataclass(frozen=True)
class Unary(Expr):
    """Unary ``-``, ``!``, ``*`` (dereference), or ``&`` (address-of)."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Index(Expr):
    """``base[index]`` over arrays or pointers."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class CallExpr(Expr):
    callee: str
    args: Sequence[Expr]


@dataclass(frozen=True)
class CasExpr(Expr):
    """``cas(addr, expected, new)`` returning the old value."""

    addr: Expr
    expected: Expr
    new: Expr


@dataclass(frozen=True)
class XchgExpr(Expr):
    """``xchg(addr, value)`` returning the old value."""

    addr: Expr
    value: Expr


@dataclass(frozen=True)
class FaddExpr(Expr):
    """``fadd(addr, value)`` (fetch-and-add) returning the old value."""

    addr: Expr
    value: Expr


@dataclass(frozen=True)
class AtomicLoadExpr(Expr):
    """``atomic_load(addr, acquire|relaxed)`` — a qualified atomic read.

    ``acquire`` discharges the ``r->r``/``r->w`` ordering obligations
    out of the load; ``relaxed`` marks the access atomic but orders
    nothing (it still needs fences like a plain access).
    """

    addr: Expr
    ordering: str


# --- statements --------------------------------------------------------------


@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class Block(Stmt):
    stmts: Sequence[Stmt]


@dataclass(frozen=True)
class LocalDecl(Stmt):
    """``local x;`` or ``local x = e;`` or ``local a[n];``"""

    name: str
    size: int = 1
    init: Optional[Expr] = None


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value;`` where target is Var, Index, or Unary('*')."""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Block
    els: Optional[Block] = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Block


@dataclass(frozen=True)
class For(Stmt):
    """``for (init; cond; step) body`` — sugar; lowered like while."""

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: Block


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True)
class FenceStmt(Stmt):
    """``fence;`` (full) or ``cfence;`` (compiler directive).

    A full fence may name an ISA flavor — ``fence lwsync;`` — which the
    lowering keeps on the IR :class:`~repro.ir.instructions.Fence`
    (see :mod:`repro.arch` for the flavor catalogs).

    These are *manual* fences; the compiler drops them unless asked to
    keep them (the manual-placement variant of the experiments).
    """

    full: bool = True
    flavor: str | None = None


@dataclass(frozen=True)
class AtomicStoreStmt(Stmt):
    """``atomic_store(addr, value, release|relaxed);``.

    ``release`` discharges the ``r->w``/``w->w`` ordering obligations
    into the store; ``relaxed`` orders nothing.
    """

    addr: Expr
    value: Expr
    ordering: str


@dataclass(frozen=True)
class ObserveStmt(Stmt):
    label: str
    expr: Expr


# --- top-level ----------------------------------------------------------------


@dataclass(frozen=True)
class GlobalDecl(Node):
    """``init`` entries are ints or ``("&", name)`` symbolic addresses
    (paper Fig. 5 needs ``y = &z`` initial state)."""

    name: str
    size: int = 1
    init: Sequence[object] = field(default_factory=lambda: (0,))


@dataclass(frozen=True)
class FuncDecl(Node):
    name: str
    params: Sequence[str]
    body: Block


@dataclass(frozen=True)
class ThreadDecl(Node):
    func_name: str
    args: Sequence[int]


@dataclass(frozen=True)
class Module(Node):
    globals: Sequence[GlobalDecl]
    functions: Sequence[FuncDecl]
    threads: Sequence[ThreadDecl]
