"""Tests for flavored fence lowering (repro.arch.lowering)."""

import itertools

import pytest

from repro.arch.backend import get_backend
from repro.arch.lowering import (
    apply_lowered_plan,
    lower_analysis,
    lower_fence,
    lower_plan,
)
from repro.core.fence_min import FencePlan, PlannedFence, plan_fences
from repro.core.machine_models import MODELS, OrderKind
from repro.core.pipeline import PipelineVariant, analyze_program
from repro.frontend import compile_source
from repro.ir.instructions import Fence, FenceKind
from repro.ir.verifier import verify_program
from repro.memmodel.litmus import LITMUS_TESTS
from repro.registry.variants import get_variant

RR, RW, WR, WW = OrderKind.RR, OrderKind.RW, OrderKind.WR, OrderKind.WW


def all_kind_subsets():
    kinds = sorted(OrderKind, key=lambda k: k.value)
    for n in range(1, len(kinds) + 1):
        for combo in itertools.combinations(kinds, n):
            yield frozenset(combo)


# --- per-fence lowering ------------------------------------------------------


@pytest.mark.parametrize("key", ["x86", "arm", "power"])
@pytest.mark.parametrize(
    "kinds", list(all_kind_subsets()), ids=lambda s: "+".join(sorted(k.name for k in s))
)
def test_lowered_fence_is_cheapest_sufficient(key, kinds):
    """Acceptance criterion at the lowering layer: a planned full fence
    covering ``kinds`` lowers to exactly the backend's cheapest
    sufficient flavor — never FULL when something cheaper suffices."""
    backend = get_backend(key)
    planned = PlannedFence("entry", 1, FenceKind.FULL, covers=kinds)
    lowered = lower_fence(planned, backend)
    expected = backend.cheapest_flavor(kinds)
    assert lowered.flavor == expected.name
    assert lowered.cost == expected.cost
    # If any registered flavor cheaper than the full flavor suffices,
    # the full flavor must not have been picked.
    cheaper = [
        f for f in backend.flavors
        if f.sufficient_for(kinds) and f.cost < backend.full_flavor().cost
    ]
    if cheaper:
        assert lowered.flavor != backend.full_flavor().name


def test_compiler_directives_stay_free_and_unflavored():
    lowered = lower_fence(
        PlannedFence("b", 2, FenceKind.COMPILER, covers=frozenset({RR})),
        get_backend("power"),
    )
    assert lowered.flavor is None
    assert lowered.cost == 0
    assert lowered.kind is FenceKind.COMPILER


def test_uncovered_full_fence_lowers_conservatively():
    """A plan without recorded kill-sets (hand-built / every-delay)
    takes the full flavor."""
    lowered = lower_fence(
        PlannedFence("b", 0, FenceKind.FULL), get_backend("power")
    )
    assert lowered.flavor == "sync"


def test_entry_fence_lowers_to_full_flavor():
    source = LITMUS_TESTS["mp"].source
    program = compile_source(source, "mp")
    func = program.functions["consumer"]
    plan = FencePlan(func, entry_fence=True)
    lowered = lower_plan(plan, get_backend("power"))
    assert lowered.entry_fence
    assert lowered.entry_flavor == "sync"
    assert lowered.entry_cost == 80
    assert lowered.full_count == 1
    assert lowered.cost == 80


# --- whole-program lowering --------------------------------------------------


def _plans_for(model_key: str):
    program = compile_source(LITMUS_TESTS["mp"].source, "mp")
    analysis = analyze_program(
        program, PipelineVariant.ADDRESS_CONTROL, MODELS[model_key]
    )
    return program, analysis


def test_mp_on_power_uses_eieio_and_lwsync():
    """The MP producer's w->w cut takes eieio, the consumer's r->r cut
    takes lwsync; only the entry fence pays for sync."""
    _, analysis = _plans_for("power")
    _, summary = lower_analysis(analysis, get_backend("power"))
    assert summary.flavors == {"eieio": 1, "lwsync": 1, "sync": 1}
    assert summary.cost == 25 + 33 + 80
    assert summary.full_fences == 3


def test_mp_on_arm_uses_dmbst_for_the_store_cut():
    _, analysis = _plans_for("arm")
    _, summary = lower_analysis(analysis, get_backend("arm"))
    assert summary.flavors == {"dmbst": 1, "dmb": 2}
    assert summary.cost == 24 + 2 * 48


def test_x86_lowering_is_all_mfence():
    _, analysis = _plans_for("x86-tso")
    _, summary = lower_analysis(analysis, get_backend("x86"))
    assert set(summary.flavors) == {"mfence"}
    assert summary.cost == summary.full_fences * 60


# --- applied lowering parity -------------------------------------------------


@pytest.mark.parametrize("name", ["mp", "dekker", "mp-pointers"])
@pytest.mark.parametrize("arch", ["x86", "arm", "power"])
def test_lowered_placement_matches_generic_positions(name, arch):
    """Flavored insertion puts the same number of fences at the same
    program points as the generic path; only the flavors differ."""
    backend = get_backend(arch)
    model = MODELS[backend.model_key]
    test = LITMUS_TESTS[name]

    generic = compile_source(test.source, test.name)
    get_variant("address+control").place(generic, model)

    flavored = compile_source(test.source, test.name)
    get_variant("address+control").place(flavored, model, backend=backend)

    verify_program(flavored)
    for fname in generic.functions:
        g_insts = list(generic.functions[fname].instructions())
        f_insts = list(flavored.functions[fname].instructions())
        assert len(g_insts) == len(f_insts)
        for gi, fi in zip(g_insts, f_insts):
            assert type(gi) is type(fi)
            if isinstance(gi, Fence):
                assert gi.kind is fi.kind
                assert gi.flavor is None
                if fi.kind is FenceKind.FULL:
                    assert backend.has_flavor(fi.flavor)
                else:
                    assert fi.flavor is None


def test_apply_lowered_plan_inserts_flavors():
    program = compile_source(LITMUS_TESTS["mp"].source, "mp")
    backend = get_backend("power")
    analysis = analyze_program(
        program, PipelineVariant.ADDRESS_CONTROL, MODELS["power"]
    )
    inserted = 0
    for fa in analysis.functions.values():
        inserted += apply_lowered_plan(
            fa.function, lower_plan(fa.plan, backend)
        )
    assert inserted == 3
    flavors = [
        inst.flavor
        for func in program.functions.values()
        for inst in func.instructions()
        if isinstance(inst, Fence)
    ]
    assert sorted(flavors) == ["eieio", "lwsync", "sync"]


MANUAL_EIEIO_DEKKER = """
global int x;
global int y;
global int z;

fn left(tid) {
  local r = 0;
  x = 1;
  fence eieio;
  r = y;
  if (r == 0) {
    z = z + 1;
    observe("in", 1);
  }
}

fn right(tid) {
  local r = 0;
  y = 1;
  fence eieio;
  r = x;
  if (r == 0) {
    z = z + 1;
    observe("in", 1);
  }
}

thread left(0);
thread right(1);
"""


def test_weak_flavored_manual_fence_is_not_a_full_enforcement_point():
    """A manual ``fence eieio;`` kills only w->w: the planner must not
    credit it with satisfying the w->r delay cut it happens to sit in
    (regression: pre-fix the placement skipped the needed sync and the
    POWER explorer kept a non-SC outcome)."""
    from repro.memmodel.relaxed import POWERExplorer
    from repro.memmodel.sc import SCExplorer

    fenced = compile_source(
        MANUAL_EIEIO_DEKKER, "dekker", include_manual_fences=True
    )
    backend = get_backend("power")
    get_variant("address+control").place(
        fenced, MODELS["power"], backend=backend
    )
    flavors = [
        inst.flavor
        for func in fenced.functions.values()
        for inst in func.instructions()
        if isinstance(inst, Fence)
    ]
    assert "sync" in flavors  # the w->r cut still got its full fence
    sc = SCExplorer(
        compile_source(MANUAL_EIEIO_DEKKER, "dekker", include_manual_fences=True)
    ).explore()
    weak = POWERExplorer(fenced).explore()
    assert weak.observation_sets() == sc.observation_sets()


def test_check_backend_only_for_flavor_honoring_explorers():
    """Differential checking lowers through a backend only where the
    explorer models flavor kill-sets: TSO/PSO treat every full fence
    as mfence-strength, so they keep generic placements."""
    from repro.registry.models import backend_for_model, check_backend_for_model

    assert check_backend_for_model("x86-tso") is None
    assert check_backend_for_model("pso") is None
    assert check_backend_for_model("rmo") is None
    assert check_backend_for_model("arm").key == "arm"
    assert check_backend_for_model("power").key == "power"
    # ...while cost reporting still prices every arch-backed model.
    assert backend_for_model("pso").key == "x86"


def test_apply_lowered_plan_targets_the_passed_function():
    """Like apply_plan, the fences must go into the ``func`` argument —
    a caller may apply an earlier analysis's plan to a fresh compile
    (regression: they previously went into plan.function)."""
    backend = get_backend("power")
    analyzed = compile_source(LITMUS_TESTS["mp"].source, "mp")
    analysis = analyze_program(
        analyzed, PipelineVariant.ADDRESS_CONTROL, MODELS["power"]
    )
    clone = compile_source(LITMUS_TESTS["mp"].source, "mp")
    inserted = 0
    for name, fa in analysis.functions.items():
        inserted += apply_lowered_plan(
            clone.functions[name], lower_plan(fa.plan, backend)
        )
    assert inserted == 3
    assert any(
        isinstance(inst, Fence)
        for func in clone.functions.values()
        for inst in func.instructions()
    )
    assert not any(  # the analyzed original stays untouched
        isinstance(inst, Fence)
        for func in analyzed.functions.values()
        for inst in func.instructions()
    )


def test_plan_covers_recorded_per_kind():
    """plan_fences records each stabbed interval's ordering kind on the
    fence that enforces it."""
    test = LITMUS_TESTS["mp"]
    program = compile_source(test.source, test.name)
    analysis = analyze_program(
        program, PipelineVariant.ADDRESS_CONTROL, MODELS["power"]
    )
    producer_plan = analysis.functions["producer"].plan
    assert [f.covers for f in producer_plan.full_fences] == [frozenset({WW})]
    consumer_plan = analysis.functions["consumer"].plan
    assert all(f.covers for f in consumer_plan.fences)
