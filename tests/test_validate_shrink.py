"""Tests for counterexample shrinking and snippet emission."""

from __future__ import annotations

import pytest

from repro.memmodel.litmus import LitmusTest
from repro.validate.generator import generate_program
from repro.validate.oracle import run_oracle
from repro.validate.shrink import (
    _candidates,
    _spans,
    shrink_counterexample,
    to_litmus_snippet,
)


def test_spans_brace_matching():
    lines = [
        "global int x;",
        "fn f(tid) {",
        "  while (x == 0) { }",
        "  if (x > 1) {",
        "    x = 2;",
        "  } else {",
        "    x = 3;",
        "  }",
        "}",
        "thread f(0);",
    ]
    spans = _spans(lines)
    assert spans["fn"] == [(1, 8)]
    # The if/else chain is one block; the one-line while matches nothing.
    assert spans["block"] == [(3, 7)]


def test_candidates_include_function_thread_pairs():
    source = generate_program(2, "dekker").source
    lines = source.splitlines()
    candidates = list(_candidates(lines))
    assert candidates, "generator output should always offer reductions"
    # Dropping d_left must also drop its thread declaration.
    dropped = min(candidates, key=len)
    assert all(len(c) <= len(lines) + 1 for c in candidates)
    assert any(
        "thread d_left(0);" not in "\n".join(c)
        and "fn d_left" not in "\n".join(c)
        for c in candidates
    )
    assert dropped != lines


def test_shrink_dekker_vanilla_counterexample_is_small():
    """The acceptance demo: a deliberately-null detector yields a
    shrunk counterexample well under 25 source lines."""
    generated = generate_program(2, "dekker")  # control/control flavors
    result = shrink_counterexample(
        generated.source,
        generated.name,
        "vanilla",
        "x86-tso",
        generated.sync_globals,
    )
    assert result.lines < 25
    assert result.checks > 0
    # The shrunk program is still a genuine counterexample.
    report = run_oracle(
        result.source,
        generated.name,
        variants=("vanilla",),
        sync_globals=generated.sync_globals,
    )
    assert report.contract_applies
    assert len(report.violations) == 1


def test_shrink_returns_original_when_not_a_counterexample():
    generated = generate_program(0, "publish")
    result = shrink_counterexample(
        generated.source,
        generated.name,
        "address+control",  # sound here: nothing to shrink
        "x86-tso",
        generated.sync_globals,
    )
    assert result.passes == 0
    assert result.source.strip() == generated.source.strip()


def test_snippet_is_a_valid_litmus_test_definition():
    generated = generate_program(2, "dekker")
    snippet = to_litmus_snippet(
        "fuzz-dekker-0002-vanilla",
        generated.source,
        generated.sync_globals | {"not_a_global"},
        description="demo",
        notes="from test",
    )
    assert snippet.startswith("FUZZ_DEKKER_0002_VANILLA = LitmusTest(")
    # Globals not present in the program are dropped from the marking.
    assert "not_a_global" not in snippet
    namespace = {"LitmusTest": LitmusTest, "frozenset": frozenset}
    exec(snippet, namespace)  # noqa: S102 - snippet round-trip check
    test = namespace["FUZZ_DEKKER_0002_VANILLA"]
    assert isinstance(test, LitmusTest)
    assert test.sync_globals == generated.sync_globals
    assert test.compile().name == "fuzz-dekker-0002-vanilla"


def test_shrink_respects_check_cap():
    generated = generate_program(2, "dekker")
    result = shrink_counterexample(
        generated.source,
        generated.name,
        "vanilla",
        "x86-tso",
        generated.sync_globals,
        max_checks=1,
    )
    # Only the initial confirmation ran; nothing was reduced.
    assert result.checks == 1
    assert result.source.strip() == generated.source.strip()
