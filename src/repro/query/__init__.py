"""`repro.query` — the demand-driven incremental query engine.

Analysis facts (points-to, escape, reachability, acquire detection,
the interprocedural fixpoint) are *queries*: named computations over
fingerprinted inputs, registered in a string-keyed catalog and
evaluated on demand by a :class:`QueryEngine`. The engine records the
dependency edges each evaluation actually followed, so editing one
function invalidates exactly the query subgraph that read it — warm
re-analysis of an edited program recomputes the changed function's
facts and everything downstream, nothing else.

:class:`~repro.engine.context.AnalysisContext` remains the public way
to ask for facts; since this package exists it is a thin facade over a
:class:`QueryEngine`. New fact kinds plug in by registering a
:class:`QuerySpec` (optionally with an encode/decode pair, which makes
the query persistable in an on-disk cache keyed by input fingerprint).
"""

from repro.query.engine import (
    QUERIES,
    PersistentQueryCache,
    QueryEngine,
    QuerySpec,
    QueryStats,
    fingerprint_function,
    fingerprint_program_shape,
    query,
)

# Importing the fact definitions registers them in QUERIES. The race
# queries live with their package but join the same catalog.
import repro.query.facts  # noqa: E402,F401  (registration side effect)
import repro.races.queries  # noqa: E402,F401  (registration side effect)

__all__ = [
    "QUERIES",
    "PersistentQueryCache",
    "QueryEngine",
    "QuerySpec",
    "QueryStats",
    "fingerprint_function",
    "fingerprint_program_shape",
    "query",
]
