"""Unit tests for the IR builder and CFG utilities."""

import pytest

from repro.ir import CFG, Constant, GlobalRef, IRBuilder
from repro.ir.verifier import verify_function


def _diamond():
    """entry -> (then | else) -> merge."""
    b = IRBuilder("diamond", ["c"])
    b.new_block("entry")
    cond = b.load(GlobalRef("x"))
    b.br(cond, "then", "else")
    b.set_block(b.block("then"))
    b.store(GlobalRef("y"), Constant(1))
    b.jump("merge")
    b.set_block(b.block("else"))
    b.store(GlobalRef("y"), Constant(2))
    b.jump("merge")
    b.set_block(b.block("merge"))
    b.ret()
    return b.build()


def _loop():
    """entry -> head <-> body, head -> exit."""
    b = IRBuilder("loop")
    b.new_block("entry")
    b.jump("head")
    b.set_block(b.block("head"))
    cond = b.load(GlobalRef("flag"))
    b.br(cond, "body", "exit")
    b.set_block(b.block("body"))
    b.store(GlobalRef("x"), Constant(1))
    b.jump("head")
    b.set_block(b.block("exit"))
    b.ret()
    return b.build()


def test_builder_fresh_registers_unique():
    b = IRBuilder("f")
    b.new_block()
    r1 = b.load(GlobalRef("x"))
    r2 = b.load(GlobalRef("x"))
    assert r1.name != r2.name


def test_builder_auto_terminates_blocks():
    b = IRBuilder("f")
    b.new_block("entry")
    b.store(GlobalRef("x"), Constant(1))
    func = b.build()
    assert func.entry.is_terminated()


def test_builder_requires_current_block():
    b = IRBuilder("f")
    with pytest.raises(ValueError):
        b.store(GlobalRef("x"), Constant(1))


def test_builder_output_verifies():
    verify_function(_diamond())
    verify_function(_loop())


def test_cfg_successors_predecessors():
    cfg = CFG(_diamond())
    assert set(cfg.succ["entry"]) == {"then", "else"}
    assert set(cfg.pred["merge"]) == {"then", "else"}
    assert cfg.pred["entry"] == ()


def test_cfg_reachability_diamond():
    cfg = CFG(_diamond())
    assert cfg.reaches("entry", "merge")
    assert cfg.reaches("then", "merge")
    assert not cfg.reaches("merge", "entry")
    assert not cfg.reaches("then", "else")
    # No cycle: entry does not reach itself.
    assert not cfg.reaches("entry", "entry")


def test_cfg_reachability_loop():
    cfg = CFG(_loop())
    assert cfg.reaches("head", "head")  # via the loop body
    assert cfg.reaches("body", "body")
    assert cfg.reaches("head", "exit")
    assert not cfg.reaches("exit", "head")


def test_cfg_dominators_diamond():
    dom = CFG(_diamond()).dominators()
    assert dom["merge"] == {"entry", "merge"}
    assert dom["then"] == {"entry", "then"}


def test_cfg_back_edges_loop():
    cfg = CFG(_loop())
    assert cfg.back_edges() == [("body", "head")]
    assert cfg.natural_loop(("body", "head")) == {"head", "body"}


def test_cfg_blocks_in_cycles():
    assert CFG(_loop()).blocks_in_cycles() == {"head", "body"}
    assert CFG(_diamond()).blocks_in_cycles() == frozenset()


def test_cfg_reverse_postorder_starts_at_entry():
    order = CFG(_diamond()).reverse_postorder()
    assert order[0] == "entry"
    assert order.index("merge") > order.index("then")
    assert order.index("merge") > order.index("else")


def test_cfg_branch_to_unknown_label_raises():
    b = IRBuilder("bad")
    b.new_block("entry")
    b.jump("nowhere")
    # add_block never created "nowhere"
    func = b.function
    func.finalize()
    with pytest.raises(ValueError):
        CFG(func)


def test_cfg_unreachable_blocks():
    b = IRBuilder("f")
    b.new_block("entry")
    b.ret()
    b.new_block("orphan")
    b.ret()
    func = b.build()
    assert CFG(func).unreachable_blocks() == {"orphan"}
