#!/usr/bin/env python
"""Prometheus text-format (v0) checker for the ``metrics`` op output.

Validates the subset this repo emits, strictly enough to catch the
bugs that actually bite scrapers:

* every sample is preceded by a ``# TYPE`` line for its family, and
  family names match the metric-name grammar;
* counter families end in ``_total``; histogram families expose
  ``_bucket``/``_sum``/``_count`` series and nothing else;
* per labelset, histogram ``le`` buckets are cumulative (monotonically
  non-decreasing counts), end with ``le="+Inf"``, and the ``+Inf``
  bucket equals the ``_count`` sample;
* every value parses as a finite float (counts as non-negative).

Reads stdin by default (``... | python tools/check_prom_format.py``)
or a file via ``--file``. Exits non-zero listing every violation.
"""

from __future__ import annotations

import argparse
import math
import re
import sys

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

#: family name -> series-name suffixes a histogram exposes.
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def _family_of(sample_name: str, families: dict[str, str]) -> str | None:
    """The declared family a sample belongs to, or None."""
    if sample_name in families:
        return sample_name
    for suffix in _HIST_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if families.get(base) == "histogram":
                return base
    return None


def check_text(text: str) -> list[str]:
    """All format violations in ``text`` (empty list = valid)."""
    problems: list[str] = []
    families: dict[str, str] = {}
    # (family, frozenset of non-le labels) -> [(le, count), ...] in order
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    sums_seen: set[tuple] = set()

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, name, kind = parts
            if not _NAME.match(name):
                problems.append(f"line {lineno}: bad family name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: unknown type {kind!r}")
            if name in families:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            families[name] = kind
            if kind == "counter" and not name.endswith("_total"):
                problems.append(
                    f"line {lineno}: counter family {name} should end in _total"
                )
            continue
        if line.startswith("#"):
            continue  # HELP / comments: accepted, not required
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        raw_labels = match.group("labels")
        labels: dict[str, str] = {}
        if raw_labels:
            for part in raw_labels.split(","):
                label = _LABEL.match(part)
                if label is None:
                    problems.append(
                        f"line {lineno}: malformed label {part!r} in {name}"
                    )
                    break
                labels[label.group("key")] = label.group("value")
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value in {line!r}")
            continue
        if math.isnan(value) or math.isinf(value):
            problems.append(f"line {lineno}: non-finite value in {name}")
        family = _family_of(name, families)
        if family is None:
            problems.append(f"line {lineno}: sample {name} has no TYPE line")
            continue
        kind = families[family]
        if kind in ("counter", "histogram") and value < 0:
            problems.append(f"line {lineno}: negative {kind} value in {name}")
        if kind == "histogram":
            if name == family:
                problems.append(
                    f"line {lineno}: bare histogram sample {name}; expected "
                    "_bucket/_sum/_count series"
                )
                continue
            series_key = (
                family,
                frozenset((k, v) for k, v in labels.items() if k != "le"),
            )
            if name.endswith("_bucket"):
                le_raw = labels.get("le")
                if le_raw is None:
                    problems.append(f"line {lineno}: _bucket without le label")
                    continue
                le = math.inf if le_raw == "+Inf" else float(le_raw)
                buckets.setdefault(series_key, []).append((le, value))
            elif name.endswith("_count"):
                counts[series_key] = value
            else:
                sums_seen.add(series_key)

    for (family, labelset), series in buckets.items():
        where = f"{family}{{{', '.join(f'{k}={v}' for k, v in sorted(labelset))}}}"
        les = [le for le, _ in series]
        if les != sorted(les):
            problems.append(f"{where}: le buckets out of order")
        if not les or les[-1] != math.inf:
            problems.append(f"{where}: bucket series does not end with +Inf")
        values = [v for _, v in series]
        if any(b > a for b, a in zip(values, values[1:])):
            problems.append(f"{where}: bucket counts are not cumulative")
        if (family, labelset) not in counts:
            problems.append(f"{where}: missing _count sample")
        elif les and les[-1] == math.inf and values[-1] != counts[(family, labelset)]:
            problems.append(
                f"{where}: +Inf bucket ({values[-1]:g}) != _count "
                f"({counts[(family, labelset)]:g})"
            )
        if (family, labelset) not in sums_seen:
            problems.append(f"{where}: missing _sum sample")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--file", default=None,
                        help="exposition file (default: stdin)")
    args = parser.parse_args(argv)
    if args.file is None:
        text = sys.stdin.read()
    else:
        with open(args.file, encoding="utf-8") as handle:
            text = handle.read()
    problems = check_text(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    print(f"ok: {samples} sample(s) pass the text-format checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
