"""``repro obs top`` / ``repro obs metrics``: live views over the wire.

Both commands speak the servers' JSON-lines protocol — one ``{"op":
"metrics"}`` (and, for ``top``, one ``{"op": "stats"}``) per refresh —
so they work unchanged against the threaded daemon and the cluster
frontend; the cluster answers with cross-worker-aggregated metrics
plus per-worker rows.

``top`` renders a per-op latency table (count, error count, p50/p95/
p99 from the fixed-bucket histograms) and, against a cluster, a
per-worker table (queue depth, in-flight, served, restarts), then the
tail of the slow-query log. ``--once`` renders a single frame (tests,
scripting); otherwise it refreshes every ``--interval`` seconds until
interrupted.
"""

from __future__ import annotations

import json
import re
import socket
import sys
import time

from repro.obs.metrics import render_prometheus, split_sample
from repro.util.text import format_table

_LABEL = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _labels_of(sample: str) -> dict[str, str]:
    _, raw = split_sample(sample)
    return {m.group(1): m.group(2) for m in _LABEL.finditer(raw)}


def fetch_ops(host: str, port: int, ops: list[dict],
              timeout: float = 10.0) -> list[dict]:
    """Send JSON-lines ops over one connection; one response per op."""
    responses: list[dict] = []
    with socket.create_connection((host, port), timeout=timeout) as sock:
        reader = sock.makefile("r", encoding="utf-8")
        writer = sock.makefile("w", encoding="utf-8")
        for op in ops:
            writer.write(json.dumps(op) + "\n")
            writer.flush()
            line = reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            responses.append(json.loads(line))
    return responses


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"


def render_ops_table(metrics_payload: dict) -> str | None:
    """Per-op latency table from the request-latency histograms.

    A cluster's merged payload carries *two* views of every request —
    the frontend's ``repro_cluster_*`` (client-perceived, includes
    queueing) and the workers' ``repro_serve_*`` (dispatch only) — so
    prefer the client-facing family and only fall back to the serve
    family against the threaded daemon.
    """
    histograms = metrics_payload.get("histograms") or {}
    counters = metrics_payload.get("counters") or {}
    layer = "cluster" if any(
        split_sample(s)[0] == "repro_cluster_request_seconds" for s in histograms
    ) else "serve"
    errors: dict[str, float] = {}
    for sample, value in counters.items():
        name, _ = split_sample(sample)
        if name == f"repro_{layer}_requests_total":
            labels = _labels_of(sample)
            if labels.get("ok") == "false":
                kind = labels.get("kind", "?")
                errors[kind] = errors.get(kind, 0) + value
    rows = []
    for sample, hist in sorted(histograms.items()):
        name, _ = split_sample(sample)
        if name != f"repro_{layer}_request_seconds":
            continue
        kind = _labels_of(sample).get("kind", "?")
        rows.append([
            kind,
            hist.get("count", 0),
            int(errors.get(kind, 0)),
            _ms(hist.get("p50", 0.0)),
            _ms(hist.get("p95", 0.0)),
            _ms(hist.get("p99", 0.0)),
        ])
    if not rows:
        return None
    return format_table(
        ["op", "count", "errors", "p50 ms", "p95 ms", "p99 ms"],
        rows,
        title="request latency by op",
    )


def render_workers_table(stats: dict) -> str | None:
    """Per-worker table from a cluster ``stats`` op response."""
    workers = (stats.get("cluster") or {}).get("workers") or ()
    if not workers:
        return None
    rows = []
    for row in workers:
        session = row.get("session") or {}
        query_cache = session.get("query_cache") or {}
        hit_rate = query_cache.get("hit_rate")
        rows.append([
            row.get("worker"),
            "(restarting)" if row.get("restarting") else row.get("pid"),
            row.get("queue_depth"),
            row.get("inflight"),
            row.get("served", row.get("answered")),
            row.get("restarts"),
            "n/a" if hit_rate is None else f"{hit_rate:.2f}",
        ])
    return format_table(
        ["worker", "pid", "queue", "inflight", "served", "restarts",
         "store-hit"],
        rows,
        title="workers",
    )


def render_slow_queries(slow: list[dict], limit: int = 8) -> str | None:
    if not slow:
        return None
    rows = [
        [e.get("query"), e.get("key"), e.get("fingerprint") or "-",
         f"{e.get('seconds', 0):.3f}"]
        for e in slow[-limit:]
    ]
    return format_table(
        ["query", "key", "fingerprint", "seconds"],
        rows,
        title=f"slow queries (last {len(rows)})",
    )


def render_frame(metrics_response: dict, stats_response: dict | None) -> str:
    """One full ``top`` frame from the two op responses."""
    payload = metrics_response.get("metrics") or {}
    parts = [render_ops_table(payload)]
    if stats_response is not None:
        parts.append(render_workers_table(stats_response))
    parts.append(render_slow_queries(metrics_response.get("slow_queries") or []))
    rendered = [p for p in parts if p]
    if not rendered:
        return "(no samples yet — send the server some requests)"
    return "\n\n".join(rendered)


def run_top(host: str, port: int, interval: float = 2.0,
            once: bool = False, out=None) -> int:
    """The ``repro obs top`` loop; returns a process exit code."""
    stream = out if out is not None else sys.stdout
    while True:
        try:
            metrics_response, stats_response = fetch_ops(
                host, port, [{"op": "metrics"}, {"op": "stats"}]
            )
        except (OSError, ValueError) as exc:
            print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
            return 2
        if not metrics_response.get("ok"):
            print(
                f"metrics op failed: {metrics_response.get('error')}",
                file=sys.stderr,
            )
            return 2
        frame = render_frame(metrics_response, stats_response)
        if not once and stream.isatty():  # pragma: no cover - interactive
            stream.write("\x1b[2J\x1b[H")
        stream.write(frame + "\n")
        stream.flush()
        if once:
            return 0
        try:
            time.sleep(interval)  # pragma: no cover - interactive loop
        except KeyboardInterrupt:  # pragma: no cover
            return 0


def run_metrics(host: str, port: int, as_json: bool = False,
                out=None) -> int:
    """``repro obs metrics``: dump one exposition (text or JSON)."""
    stream = out if out is not None else sys.stdout
    try:
        (response,) = fetch_ops(host, port, [{"op": "metrics"}])
    except (OSError, ValueError) as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 2
    if not response.get("ok"):
        print(f"metrics op failed: {response.get('error')}", file=sys.stderr)
        return 2
    if as_json:
        stream.write(
            json.dumps(response.get("metrics"), indent=2, sort_keys=True) + "\n"
        )
    else:
        text = response.get("text")
        if text is None:
            text = render_prometheus(response.get("metrics") or {})
        stream.write(text)
    stream.flush()
    return 0
