#!/usr/bin/env python
"""Regenerate the golden wire-format files under tests/data/reports/.

Run after an *intentional* schema change (and bump the affected
SCHEMA_VERSION):

    PYTHONPATH=src python tools/gen_golden_reports.py
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "tests"))


def main() -> int:
    from _report_fixtures import sample_payloads

    out_dir = ROOT / "tests" / "data" / "reports"
    out_dir.mkdir(parents=True, exist_ok=True)
    for kind, sample in sorted(sample_payloads().items()):
        path = out_dir / f"{kind}.json"
        path.write_text(sample.to_json() + "\n", encoding="utf-8")
        print(f"wrote {path.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
