"""SPLASH-2 models, part 2: Ocean-noncon, Radiosity, Radix, Raytrace,
Volrend, Water-NSquared, Water-Spatial.

See :mod:`repro.programs.splash2_part1` for the modeling rules. The
programs in this half carry the per-program extremes the paper calls
out: Raytrace's branch-heavy loads (most reads marked acquire by
Control), Water-NSquared's arithmetic-only loads (fewest), Radix's
index-array permutation (Address+Control marks the rank reads), and
Volrend's ad-hoc barrier (2 expert fences).
"""

from __future__ import annotations

from repro.programs.datagen import compute_section
from repro.programs.registry import BenchProgram
from repro.programs.runtime import RUNTIME_LIB

_ONX_DECLS, _ONX_FNS, _ = compute_section(
    "onx", stream_reads=17, gather_reads=10, scatter_reads=33, guard_reads=5
)

OCEAN_NONCON = BenchProgram(
    name="ocean-noncon",
    suite="splash2",
    description="Ocean with non-contiguous grids: same red-black "
    "relaxation as ocean-con, but rows are reached through a loaded "
    "row-pointer table (address acquires for A+C).",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _ONX_DECLS
    + "\n"
    + _ONX_FNS
    + """
global int on_storage[64];
global int on_rows[8] = {&on_storage, 0, 0, 0, 0, 0, 0, 0};
global int on_err;
global int on_errlock;

fn on_setup(tid) {
  local r = 0;
  if (tid == 0) {
    r = 1;
    while (r < 8) {
      on_rows[r] = &on_storage[((r * 3) % 8) * 8];
      r = r + 1;
    }
  }
}

fn on_sweep(tid, color) {
  local r = 0;
  local c = 0;
  local up = 0;
  local down = 0;
  local row = 0;
  local v = 0;
  local delta = 0;
  local localerr = 0;
  r = 1 + tid;
  while (r < 7) {
    row = on_rows[r];
    up = on_rows[r - 1];
    down = on_rows[r + 1];
    c = 1 + ((r + color) % 2);
    while (c < 7) {
      v = (*(up + c) + *(down + c) + *(row + c - 1) + *(row + c + 1)) / 4;
      delta = v - *(row + c);
      if (delta < 0) {
        delta = 0 - delta;
      }
      localerr = localerr + delta;
      *(row + c) = v;
      c = c + 2;
    }
    r = r + 4;
  }
  lock_acquire(&on_errlock);
  on_err = on_err + localerr;
  lock_release(&on_errlock);
}

fn on_worker(tid) {
  local it = 0;
  local i = 0;
  on_setup(tid);
  onx_init(tid);
  barrier_wait(4);
  i = tid * 16;
  while (i < tid * 16 + 16) {
    on_storage[i] = (i * 5) % 19;
    i = i + 1;
  }
  barrier_wait(4);
  it = 0;
  while (it < 4) {
    on_sweep(tid, 0);
    barrier_wait(4);
    on_sweep(tid, 1);
    barrier_wait(4);
    it = it + 1;
  }
  onx_stream(tid);
  onx_gather(tid);
  onx_guard(tid);
}

thread on_worker(0);
thread on_worker(1);
thread on_worker(2);
thread on_worker(3);
""",
)


_RDX_DECLS, _RDX_FNS, _ = compute_section(
    "rdx", stream_reads=19, gather_reads=9, scatter_reads=20, guard_reads=12
)

RADIOSITY = BenchProgram(
    name="radiosity",
    suite="splash2",
    description="Radiosity: lock-protected shared task stack of patch "
    "ids, branch-heavy visibility estimates over loaded geometry, "
    "per-patch energy locks.",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _RDX_DECLS
    + "\n"
    + _RDX_FNS
    + """
global int rd_stack[32];
global int rd_top;
global int rd_stacklock;
global int rd_energy[16];
global int rd_patchlock[16];
global int rd_vis[256];
global int rd_processed;

fn rd_push(p) {
  lock_acquire(&rd_stacklock);
  rd_stack[rd_top] = p;
  rd_top = rd_top + 1;
  lock_release(&rd_stacklock);
}

fn rd_pop(tid) {
  local p = 0;
  lock_acquire(&rd_stacklock);
  if (rd_top > 0) {
    rd_top = rd_top - 1;
    p = rd_stack[rd_top] + 1;
  }
  lock_release(&rd_stacklock);
  return p;
}

fn rd_process(tid, patch) {
  local other = 0;
  local v = 0;
  local transfer = 0;
  other = 0;
  while (other < 16) {
    if (other != patch) {
      v = rd_vis[patch * 16 + other];
      if (v > 2) {
        transfer = rd_energy[patch] * v / 16;
        if (transfer > 0) {
          lock_acquire(&rd_patchlock[other]);
          rd_energy[other] = rd_energy[other] + transfer;
          lock_release(&rd_patchlock[other]);
        }
      }
    }
    other = other + 1;
  }
  fadd(&rd_processed, 1);
}

fn rd_worker(tid) {
  local p = 0;
  local i = 0;
  i = tid * 64;
  while (i < tid * 64 + 64) {
    rd_vis[i] = (i * 3 + tid) % 7;
    i = i + 1;
  }
  rdx_init(tid);
  if (tid == 0) {
    i = 0;
    while (i < 16) {
      rd_energy[i] = 16 + i;
      rd_push(i);
      i = i + 1;
    }
  }
  barrier_wait(4);
  p = rd_pop(tid);
  while (p != 0) {
    rd_process(tid, p - 1);
    p = rd_pop(tid);
  }
  rdx_stream(tid);
  rdx_gather(tid);
  rdx_guard(tid);
  barrier_wait(4);
}

thread rd_worker(0);
thread rd_worker(1);
thread rd_worker(2);
thread rd_worker(3);
""",
)


_RXX_DECLS, _RXX_FNS, _ = compute_section(
    "rxx", stream_reads=13, gather_reads=10, scatter_reads=33, guard_reads=7
)

RADIX = BenchProgram(
    name="radix",
    suite="splash2",
    description="Radix sort: local histograms merged by fadd, then the "
    "permutation writes keys through loaded rank values (the A+C "
    "address acquires). The shortest-running program — the paper notes "
    "its results are noise-sensitive.",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _RXX_DECLS
    + "\n"
    + _RXX_FNS
    + """
global int rx_keys[32];
global int rx_out[32];
global int rx_rank[8];

fn rx_histogram(tid) {
  local i = 0;
  local n = 0;
  local d = 0;
  i = tid * 8;
  n = i + 8;
  while (i < n) {
    d = rx_keys[i] % 8;
    fadd(&rx_rank[d], 1);
    i = i + 1;
  }
}

fn rx_scan(tid) {
  local d = 0;
  local sum = 0;
  local c = 0;
  if (tid == 0) {
    d = 0;
    sum = 0;
    while (d < 8) {
      c = rx_rank[d];
      rx_rank[d] = sum;
      sum = sum + c;
      d = d + 1;
    }
  }
}

fn rx_permute(tid) {
  local i = 0;
  local n = 0;
  local d = 0;
  local pos = 0;
  i = tid * 8;
  n = i + 8;
  while (i < n) {
    d = rx_keys[i] % 8;
    pos = fadd(&rx_rank[d], 1);
    rx_out[pos] = rx_keys[i];
    i = i + 1;
  }
}

fn rx_worker(tid) {
  local i = 0;
  i = tid * 8;
  while (i < tid * 8 + 8) {
    rx_keys[i] = (i * 13 + 5) % 29;
    i = i + 1;
  }
  rxx_init(tid);
  barrier_wait(4);
  rx_histogram(tid);
  barrier_wait(4);
  rx_scan(tid);
  barrier_wait(4);
  rx_permute(tid);
  barrier_wait(4);
  rxx_stream(tid);
  rxx_gather(tid);
  rxx_guard(tid);
}

thread rx_worker(0);
thread rx_worker(1);
thread rx_worker(2);
thread rx_worker(3);
""",
)


_RTX_DECLS, _RTX_FNS, _ = compute_section(
    "rtx", stream_reads=14, gather_reads=8, scatter_reads=23, guard_reads=15
)

RAYTRACE = BenchProgram(
    name="raytrace",
    suite="splash2",
    description="Raytrace: fadd ray tickets from a shared queue, then "
    "per-ray intersection tests where nearly every loaded value feeds a "
    "comparison — the paper's worst case for Control (33% acquires).",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _RTX_DECLS
    + "\n"
    + _RTX_FNS
    + """
global int rt_ray_count = 24;
global int rt_next_ray;
global int rt_obj_x[8];
global int rt_obj_r[8];
global int rt_hits[24];
global int rt_shade[24];

fn rt_trace(tid, ray) {
  local obj = 0;
  local best = 0;
  local bestdist = 1000;
  local x = 0;
  local r = 0;
  local dist = 0;
  obj = 0;
  while (obj < 8) {
    x = rt_obj_x[obj];
    r = rt_obj_r[obj];
    dist = x - ray * 2;
    if (dist < 0) {
      dist = 0 - dist;
    }
    if (dist < r) {
      if (dist < bestdist) {
        bestdist = dist;
        best = obj + 1;
      }
    }
    obj = obj + 1;
  }
  rt_hits[ray] = best;
  if (best != 0) {
    rt_shade[ray] = rt_obj_x[best - 1] + bestdist;
  }
}

fn rt_worker(tid) {
  local ray = 0;
  local i = 0;
  if (tid == 0) {
    i = 0;
    while (i < 8) {
      rt_obj_x[i] = i * 6 + 2;
      rt_obj_r[i] = (i % 3) + 2;
      i = i + 1;
    }
  }
  rtx_init(tid);
  barrier_wait(4);
  ray = fadd(&rt_next_ray, 1);
  while (ray < rt_ray_count) {
    rt_trace(tid, ray);
    ray = fadd(&rt_next_ray, 1);
  }
  rtx_stream(tid);
  rtx_gather(tid);
  rtx_guard(tid);
  barrier_wait(4);
}

thread rt_worker(0);
thread rt_worker(1);
thread rt_worker(2);
thread rt_worker(3);
""",
)


_VRX_DECLS, _VRX_FNS, _ = compute_section(
    "vrx", stream_reads=20, gather_reads=9, scatter_reads=27, guard_reads=8
)

VOLREND = BenchProgram(
    name="volrend",
    suite="splash2",
    description="Volrend: octree opacity skip lookups and an ad-hoc "
    "barrier built on a lock-protected counter with a generation spin "
    "(the 2 expert fences of Section 5.3 sit in that barrier).",
    manual_fences_paper=2,
    source=RUNTIME_LIB
    + _VRX_DECLS
    + "\n"
    + _VRX_FNS
    + """
global int vr_voxels[64];
global int vr_octree[16];
global int vr_image[16];
global int vr_count;
global int vr_gen;
global int vr_countlock;

// The ad-hoc barrier the paper mentions: pthread-lock-protected
// counter plus a hand-rolled generation spin.
fn vr_adhoc_barrier(tid) {
  local g = 0;
  g = vr_gen;
  lock_acquire(&vr_countlock);
  vr_count = vr_count + 1;
  if (vr_count == 4) {
    vr_count = 0;
    fence;
    vr_gen = g + 1;
  }
  lock_release(&vr_countlock);
  fence;
  while (vr_gen == g) { }
}

fn vr_render(tid) {
  local px = 0;
  local v = 0;
  local node = 0;
  local acc = 0;
  local step = 0;
  px = tid * 4;
  while (px < tid * 4 + 4) {
    acc = 0;
    step = 0;
    while (step < 4) {
      node = vr_octree[(px + step) % 16];
      if (node > 1) {
        v = vr_voxels[(node * 4 + step) % 64];
        acc = acc + v;
      }
      step = step + 1;
    }
    vr_image[px] = acc;
    px = px + 1;
  }
}

fn vr_worker(tid) {
  local i = 0;
  i = tid * 16;
  while (i < tid * 16 + 16) {
    vr_voxels[i] = (i * 3) % 11;
    i = i + 1;
  }
  if (tid == 0) {
    i = 0;
    while (i < 16) {
      vr_octree[i] = (i * 5) % 4;
      i = i + 1;
    }
  }
  vrx_init(tid);
  vr_adhoc_barrier(tid);
  vr_render(tid);
  vrx_stream(tid);
  vrx_gather(tid);
  vrx_guard(tid);
  vr_adhoc_barrier(tid);
}

thread vr_worker(0);
thread vr_worker(1);
thread vr_worker(2);
thread vr_worker(3);
""",
)


_WNX_DECLS, _WNX_FNS, _ = compute_section(
    "wnx", stream_reads=42, gather_reads=10, scatter_reads=31, guard_reads=2
)

WATER_NSQUARED = BenchProgram(
    name="water-nsquared",
    suite="splash2",
    description="Water-NSquared: O(n^2) pairwise force accumulation — "
    "long runs of loads feeding pure arithmetic, the paper's best case "
    "for Control (7% acquires); per-molecule accumulator locks.",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _WNX_DECLS
    + "\n"
    + _WNX_FNS
    + """
global int wn_pos[16];
global int wn_force[16];
global int wn_lock[16];
global int wn_potential;
global int wn_potlock;

fn wn_pairforces(tid) {
  local i = 0;
  local j = 0;
  local dx = 0;
  local f = 0;
  local pot = 0;
  i = tid;
  while (i < 16) {
    j = i + 1;
    while (j < 16) {
      dx = wn_pos[i] - wn_pos[j];
      f = dx * 3 - dx / 2 + (wn_pos[i] + wn_pos[j]) / 4;
      pot = pot + dx * dx;
      lock_acquire(&wn_lock[i]);
      wn_force[i] = wn_force[i] + f;
      lock_release(&wn_lock[i]);
      lock_acquire(&wn_lock[j]);
      wn_force[j] = wn_force[j] - f;
      lock_release(&wn_lock[j]);
      j = j + 1;
    }
    i = i + 4;
  }
  lock_acquire(&wn_potlock);
  wn_potential = wn_potential + pot;
  lock_release(&wn_potlock);
}

fn wn_integrate(tid) {
  local i = 0;
  i = tid * 4;
  while (i < tid * 4 + 4) {
    wn_pos[i] = wn_pos[i] + wn_force[i] / 8;
    wn_force[i] = 0;
    i = i + 1;
  }
}

fn wn_worker(tid) {
  local step = 0;
  local i = 0;
  i = tid * 4;
  while (i < tid * 4 + 4) {
    wn_pos[i] = i * 9 + 4;
    i = i + 1;
  }
  wnx_init(tid);
  barrier_wait(4);
  step = 0;
  while (step < 3) {
    wn_pairforces(tid);
    barrier_wait(4);
    wn_integrate(tid);
    barrier_wait(4);
    step = step + 1;
  }
  wnx_stream(tid);
  wnx_gather(tid);
  wnx_guard(tid);
}

thread wn_worker(0);
thread wn_worker(1);
thread wn_worker(2);
thread wn_worker(3);
""",
)


_WSX_DECLS, _WSX_FNS, _ = compute_section(
    "wsx", stream_reads=50, gather_reads=8, scatter_reads=19, guard_reads=3
)

WATER_SPATIAL = BenchProgram(
    name="water-spatial",
    suite="splash2",
    description="Water-Spatial: cell lists — molecules are reached "
    "through per-cell member tables (loads feeding addresses), with a "
    "counted loop bound from a loaded cell size; the paper's best case "
    "for Address+Control (39%).",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _WSX_DECLS
    + "\n"
    + _WSX_FNS
    + """
global int ws_pos[16];
global int ws_force[16];
global int ws_lock[4];
// 4 cells x up to 4 members; cellcount[c] members in cellmem[c*4..].
global int ws_cellcount[4];
global int ws_cellmem[16];

fn ws_build_cells(tid) {
  local m = 0;
  local c = 0;
  local n = 0;
  if (tid == 0) {
    m = 0;
    while (m < 16) {
      c = (ws_pos[m] / 16) % 4;
      n = ws_cellcount[c];
      ws_cellmem[c * 4 + n] = m;
      ws_cellcount[c] = n + 1;
      m = m + 1;
    }
  }
}

fn ws_cellforces(tid, c) {
  local n = 0;
  local k = 0;
  local k2 = 0;
  local mi = 0;
  local mj = 0;
  local dx = 0;
  local f = 0;
  n = ws_cellcount[c];
  k = 0;
  while (k < n) {
    mi = ws_cellmem[c * 4 + k];
    k2 = k + 1;
    while (k2 < n) {
      mj = ws_cellmem[c * 4 + k2];
      dx = ws_pos[mi] - ws_pos[mj];
      f = dx * 2 + dx / 3;
      lock_acquire(&ws_lock[c]);
      ws_force[mi] = ws_force[mi] + f;
      ws_force[mj] = ws_force[mj] - f;
      lock_release(&ws_lock[c]);
      k2 = k2 + 1;
    }
    k = k + 1;
  }
}

fn ws_worker(tid) {
  local i = 0;
  local step = 0;
  i = tid * 4;
  while (i < tid * 4 + 4) {
    ws_pos[i] = (i * 17 + 3) % 64;
    i = i + 1;
  }
  wsx_init(tid);
  barrier_wait(4);
  ws_build_cells(tid);
  barrier_wait(4);
  step = 0;
  while (step < 3) {
    ws_cellforces(tid, tid);
    barrier_wait(4);
    i = tid * 4;
    while (i < tid * 4 + 4) {
      ws_pos[i] = ws_pos[i] + ws_force[i] / 8;
      i = i + 1;
    }
    barrier_wait(4);
    step = step + 1;
  }
  wsx_stream(tid);
  wsx_gather(tid);
  wsx_guard(tid);
}

thread ws_worker(0);
thread ws_worker(1);
thread ws_worker(2);
thread ws_worker(3);
""",
)
