"""SPLASH-2 models, part 1: Barnes, Cholesky, FFT, FMM, LU (x2), Ocean-con.

Each model composes two parts:

* a hand-written **synchronization scaffold** reproducing the original
  benchmark's sync structure (locks, barriers, ad-hoc flags, task
  counters) and its characteristic shared-data guards (tree-walk null
  checks in Barnes, column-bound loads in Cholesky, ...);
* a generated **compute section** (:mod:`repro.programs.datagen`)
  reproducing the benchmark's static read mix — the ratio of plain
  streaming reads to index-gather reads to branch-guarded reads that
  drives Figs 7-9 per program.

All models use 4 worker threads (the paper used 64; thread count does
not change the static analysis, and 4 keeps the timed simulator fast).
``fence;`` statements mark the expert manual placement of Section 5.3
and are stripped unless the manual variant is compiled.
"""

from __future__ import annotations

from repro.programs.datagen import compute_section
from repro.programs.registry import BenchProgram
from repro.programs.runtime import RUNTIME_LIB

NTHREADS = 4


_BH_DECLS, _BH_FNS, _ = compute_section(
    "bhx", stream_reads=17, gather_reads=10, scatter_reads=33, guard_reads=6
)

BARNES = BenchProgram(
    name="barnes",
    suite="splash2",
    description="Barnes-Hut N-body: locked tree build, pointer-chasing "
    "force walk (null checks + child dereferences), barriered phases, "
    "and a cell-interaction compute section with heavy index gathers.",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _BH_DECLS
    + "\n"
    + _BH_FNS
    + """

// 16 tree cells x 4 children; child entries are cell indices + 1 (0 = empty).
global int bh_child[64];
global int bh_mass[16];
global int bh_lock[16];
global int bh_cells = 1;
global int bh_body_x[32];
global int bh_body_acc[32];
global int bh_done;

fn bh_insert(tid, body) {
  local cell = 0;
  local slot = 0;
  local kid = 0;
  local placed = 0;
  slot = body % 4;
  while (placed == 0) {
    lock_acquire(&bh_lock[cell]);
    kid = bh_child[cell * 4 + slot];
    if (kid == 0) {
      bh_child[cell * 4 + slot] = body + 100;
      bh_mass[cell] = bh_mass[cell] + bh_body_x[body];
      lock_release(&bh_lock[cell]);
      placed = 1;
    } else {
      if (kid < 100 && kid < 16) {
        lock_release(&bh_lock[cell]);
        cell = kid;
        slot = (body + cell) % 4;
      } else {
        kid = fadd(&bh_cells, 1);
        if (kid < 16) {
          bh_child[cell * 4 + slot] = kid;
          lock_release(&bh_lock[cell]);
          cell = kid;
          slot = (body + cell) % 4;
        } else {
          bh_child[cell * 4 + slot] = body + 100;
          lock_release(&bh_lock[cell]);
          placed = 1;
        }
      }
    }
  }
}

fn bh_force(tid, body) {
  local acc = 0;
  local cell = 0;
  local slot = 0;
  local kid = 0;
  local depth = 0;
  cell = 0;
  depth = 0;
  while (depth < 8) {
    slot = (body + depth) % 4;
    kid = bh_child[cell * 4 + slot];
    if (kid == 0) {
      depth = 8;
    } else {
      if (kid >= 100) {
        acc = acc + bh_body_x[kid - 100];
        depth = 8;
      } else {
        acc = acc + bh_mass[kid];
        cell = kid;
        depth = depth + 1;
      }
    }
  }
  bh_body_acc[body] = acc;
}

fn bh_worker(tid) {
  local i = 0;
  local b = 0;
  i = 0;
  while (i < 8) {
    b = tid * 8 + i;
    bh_body_x[b] = b * 3 + 1;
    i = i + 1;
  }
  bhx_init(tid);
  barrier_wait(4);
  i = 0;
  while (i < 8) {
    bh_insert(tid, tid * 8 + i);
    i = i + 1;
  }
  barrier_wait(4);
  i = 0;
  while (i < 8) {
    bh_force(tid, tid * 8 + i);
    i = i + 1;
  }
  bhx_stream(tid);
  bhx_gather(tid);
  bhx_guard(tid);
  barrier_wait(4);
  fadd(&bh_done, 1);
}

thread bh_worker(0);
thread bh_worker(1);
thread bh_worker(2);
thread bh_worker(3);
""",
)


_CH_DECLS, _CH_FNS, _ = compute_section(
    "chx", stream_reads=23, gather_reads=9, scatter_reads=24, guard_reads=9
)

CHOLESKY = BenchProgram(
    name="cholesky",
    suite="splash2",
    description="Sparse Cholesky: fadd task counter over supernodes, "
    "per-column locks, loads of the column-structure table feeding loop "
    "bounds, plus a supernodal update compute section.",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _CH_DECLS
    + "\n"
    + _CH_FNS
    + """

global int ch_ncols = 12;
global int ch_colptr[13] = {0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30, 33, 36};
global int ch_values[36];
global int ch_collock[12];
global int ch_task;
global int ch_done[12];

fn ch_factor_col(tid, col) {
  local p = 0;
  local q = 0;
  local j = 0;
  local pivot = 0;
  p = ch_colptr[col];
  q = ch_colptr[col + 1];
  pivot = ch_values[p] + 1;
  j = p;
  while (j < q) {
    ch_values[j] = ch_values[j] * 2 + pivot;
    j = j + 1;
  }
  if (col + 1 < ch_ncols) {
    lock_acquire(&ch_collock[col + 1]);
    p = ch_colptr[col + 1];
    ch_values[p] = ch_values[p] + pivot;
    lock_release(&ch_collock[col + 1]);
  }
  ch_done[col] = 1;
}

fn ch_worker(tid) {
  local col = 0;
  chx_init(tid);
  barrier_wait(4);
  col = fadd(&ch_task, 1);
  while (col < ch_ncols) {
    ch_factor_col(tid, col);
    col = fadd(&ch_task, 1);
  }
  chx_stream(tid);
  chx_gather(tid);
  chx_guard(tid);
  barrier_wait(4);
}

thread ch_worker(0);
thread ch_worker(1);
thread ch_worker(2);
thread ch_worker(3);
""",
)


_FFT_DECLS, _FFT_FNS, _ = compute_section(
    "fftx", stream_reads=30, gather_reads=10, scatter_reads=35, guard_reads=4
)

FFT = BenchProgram(
    name="fft",
    suite="splash2",
    description="Radix-2 FFT: bit-reverse permutation through a shared "
    "reversal table (index gathers), butterfly stages of pure data "
    "movement, barriers between stages — the low-acquire profile.",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _FFT_DECLS
    + "\n"
    + _FFT_FNS
    + """

global int fft_re[64];
global int fft_im[64];
global int fft_scratch[64];
global int fft_brev[64];

fn fft_bitrev(tid) {
  local i = 0;
  local n = 0;
  i = tid * 16;
  n = i + 16;
  while (i < n) {
    fft_scratch[fft_brev[i]] = fft_re[i];
    i = i + 1;
  }
}

fn fft_stage(tid, span) {
  local i = 0;
  local n = 0;
  local a = 0;
  local b = 0;
  local partner = 0;
  i = tid * 16;
  n = i + 16;
  while (i < n) {
    partner = i ^ span;
    if (partner > i) {
      a = fft_re[i];
      b = fft_re[partner];
      fft_re[i] = a + b;
      fft_im[i] = a - b + fft_im[i];
    }
    i = i + 1;
  }
}

fn fft_worker(tid) {
  local s = 0;
  local i = 0;
  local j = 0;
  local k = 0;
  i = tid * 16;
  while (i < tid * 16 + 16) {
    fft_re[i] = i * 7 + 3;
    // Precompute the 6-bit reversal table entry (local arithmetic).
    j = 0;
    k = 0;
    while (k < 6) {
      j = j * 2 + ((i >> k) & 1);
      k = k + 1;
    }
    fft_brev[i] = j;
    i = i + 1;
  }
  fftx_init(tid);
  barrier_wait(4);
  fft_bitrev(tid);
  barrier_wait(4);
  s = 1;
  while (s < 64) {
    fft_stage(tid, s);
    barrier_wait(4);
    s = s * 2;
  }
  fftx_stream(tid);
  fftx_gather(tid);
  fftx_guard(tid);
}

thread fft_worker(0);
thread fft_worker(1);
thread fft_worker(2);
thread fft_worker(3);
""",
)


_FMM_DECLS, _FMM_FNS, _ = compute_section(
    "fmx", stream_reads=18, gather_reads=10, scatter_reads=33, guard_reads=7
)

FMM = BenchProgram(
    name="fmm",
    suite="splash2",
    description="Fast multipole: interaction-list traversal through "
    "loaded cell indices plus the ad-hoc pairwise flag handshakes the "
    "paper calls out (each needs a w->r fence between setting the own "
    "flag and reading the partner's).",
    manual_fences_paper=6,
    source=RUNTIME_LIB
    + _FMM_DECLS
    + "\n"
    + _FMM_FNS
    + """

global int fmm_mpole[16];
global int fmm_local[16];
global int fmm_ilist[32] = {1,3,5,7,9,11,13,15,0,2,4,6,8,10,12,14,
                            2,3,0,1,6,7,4,5,10,11,8,9,14,15,12,13};
global int fmm_ready[4];
global int fmm_ack[4];
global int fmm_result[4];

// Three phase-specific ad-hoc flag handshakes (the six expert fences
// of Section 5.3 sit between each own-flag write and partner-flag read).
fn fmm_sync_upward(tid) {
  local partner = 0;
  partner = tid ^ 1;
  fmm_ready[tid] = 1;
  fence;
  while (fmm_ready[partner] < 1) { }
  fmm_ack[tid] = 1;
  fence;
  while (fmm_ack[partner] < 1) { }
}

fn fmm_sync_interact(tid) {
  local partner = 0;
  partner = tid ^ 2;
  fmm_ready[tid] = 2;
  fence;
  while (fmm_ready[partner] < 2) { }
  fmm_ack[tid] = 2;
  fence;
  while (fmm_ack[partner] < 2) { }
}

fn fmm_sync_result(tid) {
  local partner = 0;
  partner = tid ^ 1;
  fmm_ready[tid] = 3;
  fence;
  while (fmm_ready[partner] < 3) { }
  fmm_ack[tid] = 3;
  fence;
  while (fmm_ack[partner] < 3) { }
}

fn fmm_upward(tid) {
  local c = 0;
  local n = 0;
  c = tid * 4;
  n = c + 4;
  while (c < n) {
    fmm_mpole[c] = fmm_mpole[c] + c * 2 + 1;
    c = c + 1;
  }
}

fn fmm_interact(tid) {
  local c = 0;
  local n = 0;
  local k = 0;
  local src = 0;
  local acc = 0;
  c = tid * 4;
  n = c + 4;
  while (c < n) {
    acc = 0;
    k = 0;
    while (k < 2) {
      src = fmm_ilist[c * 2 + k];
      acc = acc + fmm_mpole[src];
      k = k + 1;
    }
    fmm_local[c] = acc;
    c = c + 1;
  }
}

fn fmm_worker(tid) {
  fmx_init(tid);
  fmm_upward(tid);
  fmx_stream(tid);
  fmm_sync_upward(tid);
  fmm_interact(tid);
  fmx_gather(tid);
  fmx_guard(tid);
  fmm_sync_interact(tid);
  fmm_result[tid] = fmm_local[tid * 4] + fmm_local[tid * 4 + 1];
  fmm_sync_result(tid);
}

thread fmm_worker(0);
thread fmm_worker(1);
thread fmm_worker(2);
thread fmm_worker(3);
""",
)


_LU_DECLS, _LU_FNS, _ = compute_section(
    "lux", stream_reads=36, gather_reads=8, scatter_reads=28, guard_reads=5
)

LU_CON = BenchProgram(
    name="lu-con",
    suite="splash2",
    description="Blocked dense LU, contiguous blocks: elimination loops "
    "of direct-indexed data traffic with barriers between steps; almost "
    "no shared read feeds a branch.",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _LU_DECLS
    + "\n"
    + _LU_FNS
    + """

global int lu_a[64];  // 8x8 matrix, row-major

fn lu_eliminate(tid, k) {
  local i = 0;
  local j = 0;
  local pivot = 0;
  local factor = 0;
  pivot = lu_a[k * 8 + k] + 1;
  i = k + 1 + tid;
  while (i < 8) {
    factor = lu_a[i * 8 + k] / pivot;
    j = k;
    while (j < 8) {
      lu_a[i * 8 + j] = lu_a[i * 8 + j] - factor * lu_a[k * 8 + j];
      j = j + 1;
    }
    i = i + 4;
  }
}

fn lu_worker(tid) {
  local k = 0;
  local i = 0;
  i = tid * 16;
  while (i < tid * 16 + 16) {
    lu_a[i] = (i * 13) % 17 + 1;
    i = i + 1;
  }
  lux_init(tid);
  barrier_wait(4);
  k = 0;
  while (k < 7) {
    lu_eliminate(tid, k);
    barrier_wait(4);
    k = k + 1;
  }
  lux_stream(tid);
  lux_gather(tid);
  lux_guard(tid);
}

thread lu_worker(0);
thread lu_worker(1);
thread lu_worker(2);
thread lu_worker(3);
""",
)


_LUN_DECLS, _LUN_FNS, _ = compute_section(
    "lnx", stream_reads=24, gather_reads=10, scatter_reads=41, guard_reads=5
)

LU_NONCON = BenchProgram(
    name="lu-noncon",
    suite="splash2",
    description="Blocked LU, non-contiguous blocks: the same algorithm "
    "but every block is reached through a loaded block-pointer table, "
    "so many data reads feed addresses (visible to Address+Control).",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _LUN_DECLS
    + "\n"
    + _LUN_FNS
    + """

global int lun_storage[64];
global int lun_blockptr[4] = {&lun_storage, 0, 0, 0};
global int lun_init;

fn lun_setup(tid) {
  if (tid == 0) {
    lun_blockptr[1] = &lun_storage[32];
    lun_blockptr[2] = &lun_storage[16];
    lun_blockptr[3] = &lun_storage[48];
    lun_init = 1;
  }
}

fn lun_eliminate(tid, k) {
  local base = 0;
  local i = 0;
  local j = 0;
  local pivot = 0;
  local factor = 0;
  base = lun_blockptr[k % 4];
  pivot = *(base + (k % 4) * 4 + (k % 4)) + 1;
  i = tid;
  while (i < 4) {
    factor = *(base + i * 4 + k % 4) / pivot;
    j = 0;
    while (j < 4) {
      *(base + i * 4 + j) = *(base + i * 4 + j) - factor;
      j = j + 1;
    }
    i = i + 4;
  }
}

fn lun_worker(tid) {
  local k = 0;
  local i = 0;
  lun_setup(tid);
  lnx_init(tid);
  barrier_wait(4);
  i = tid * 16;
  while (i < tid * 16 + 16) {
    lun_storage[i] = (i * 11) % 13 + 1;
    i = i + 1;
  }
  barrier_wait(4);
  k = 0;
  while (k < 8) {
    lun_eliminate(tid, k);
    barrier_wait(4);
    k = k + 1;
  }
  lnx_stream(tid);
  lnx_gather(tid);
  lnx_guard(tid);
}

thread lun_worker(0);
thread lun_worker(1);
thread lun_worker(2);
thread lun_worker(3);
""",
)


_OC_DECLS, _OC_FNS, _ = compute_section(
    "ocx", stream_reads=22, gather_reads=9, scatter_reads=30, guard_reads=12
)

OCEAN_CON = BenchProgram(
    name="ocean-con",
    suite="splash2",
    description="Ocean, contiguous grids: red-black relaxation sweeps "
    "with a lock-accumulated residual (written, never branched on "
    "mid-run) and barriers between sweeps.",
    manual_fences_paper=0,
    source=RUNTIME_LIB
    + _OC_DECLS
    + "\n"
    + _OC_FNS
    + """

global int oc_grid[64];  // 8x8
global int oc_err;
global int oc_errlock;
global int oc_iters;

fn oc_sweep(tid, color) {
  local r = 0;
  local c = 0;
  local v = 0;
  local delta = 0;
  local localerr = 0;
  r = 1 + tid;
  while (r < 7) {
    c = 1 + ((r + color) % 2);
    while (c < 7) {
      v = (oc_grid[(r - 1) * 8 + c] + oc_grid[(r + 1) * 8 + c]
           + oc_grid[r * 8 + c - 1] + oc_grid[r * 8 + c + 1]) / 4;
      delta = v - oc_grid[r * 8 + c];
      localerr = localerr + delta * delta;
      oc_grid[r * 8 + c] = v;
      c = c + 2;
    }
    r = r + 4;
  }
  lock_acquire(&oc_errlock);
  oc_err = oc_err + localerr;
  lock_release(&oc_errlock);
}

fn oc_worker(tid) {
  local it = 0;
  local i = 0;
  i = tid * 16;
  while (i < tid * 16 + 16) {
    oc_grid[i] = (i * 7) % 23;
    i = i + 1;
  }
  ocx_init(tid);
  barrier_wait(4);
  it = 0;
  while (it < 3) {
    oc_sweep(tid, 0);
    barrier_wait(4);
    oc_sweep(tid, 1);
    barrier_wait(4);
    it = it + 1;
  }
  ocx_stream(tid);
  ocx_gather(tid);
  ocx_guard(tid);
  barrier_wait(4);
  fadd(&oc_iters, 1);
}

thread oc_worker(0);
thread oc_worker(1);
thread oc_worker(2);
thread oc_worker(3);
""",
)
