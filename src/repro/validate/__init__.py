"""Differential fence validation: fuzzer, oracle, shrinker, runner.

The paper's end-to-end claim — synchronization-read detection places
enough fences to make legacy DRF programs behave SC on TSO — is only
exercised by the hand-curated litmus corpus elsewhere in this repo.
This package closes the loop into a continuously-runnable soundness
oracle:

* :mod:`repro.validate.generator` — a seeded fuzzer producing tiny
  well-synchronized programs from randomized synchronization scaffolds
  (flag handoff, pointer publish, Dekker-style mutual exclusion,
  sense-reversing barrier, work-stealing deque) mixed with
  stream/gather/guarded compute kernels;
* :mod:`repro.validate.oracle` — the differential check: SC outcomes of
  the unfenced program vs weak-memory outcomes under no fences, each
  detection variant's fences, and the every-delay full placement;
* :mod:`repro.validate.shrink` — greedy delta-debugging of any
  counterexample down to a paste-ready ``LitmusTest`` snippet;
* :mod:`repro.validate.runner` — fans the {seed x shape x variant x
  model} matrix over the batch engine's process pool with a wall-clock
  budget; surfaced as ``python -m repro fuzz``.
"""

from __future__ import annotations

from repro.validate.generator import SHAPES, GeneratedProgram, generate_program
from repro.validate.oracle import (
    OracleReport,
    VariantVerdict,
    place_detected_fences,
    place_every_delay,
    run_oracle,
)
from repro.validate.runner import FuzzCase, FuzzReport, execute_fuzz_case, run_fuzz
from repro.validate.shrink import shrink_counterexample, to_litmus_snippet


def __getattr__(name: str):
    # Live registry views (see repro.validate.oracle.__getattr__): an
    # eager re-export would freeze the variant list at import time.
    if name in ("DETECTION_VARIANTS", "TRUSTED_VARIANTS"):
        from repro.validate import oracle

        return getattr(oracle, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DETECTION_VARIANTS",
    "TRUSTED_VARIANTS",
    "FuzzCase",
    "FuzzReport",
    "GeneratedProgram",
    "OracleReport",
    "SHAPES",
    "VariantVerdict",
    "execute_fuzz_case",
    "generate_program",
    "place_detected_fences",
    "place_every_delay",
    "run_fuzz",
    "run_oracle",
    "shrink_counterexample",
    "to_litmus_snippet",
]
