"""The detection-variant catalog.

A :class:`DetectionVariant` bundles everything a surface needs to run
one acquire-detection strategy: which :class:`PipelineVariant` drives
pruning, whether the detector is deliberately null (the validator's
``vanilla`` oracle-liveness probe), and whether the paper's theory
trusts its placements for legacy-DRF programs. Entries own their
analyze/place behaviour, so the oracle's old hardcoded
``PipelineVariant.CONTROL`` special case for vanilla is replaced by the
entry's own ``pipeline_variant`` — the variant under test is threaded
through the registry key.

New detectors plug in with :func:`register_variant`; every CLI choice
list, batch matrix, and fuzz run picks them up from here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine_models import X86_TSO, MemoryModel
from repro.core.pipeline import (
    FencePlacer,
    PipelineVariant,
    ProgramAnalysis,
    insert_planned_fences,
)
from repro.engine.context import AnalysisContext
from repro.ir.function import Program
from repro.registry.core import Registry
from repro.util.orderedset import OrderedSet


@dataclass(frozen=True)
class DetectionVariant:
    """One registered acquire-detection strategy."""

    key: str
    #: The pipeline configuration this variant runs (for a null
    #: detector: the pipeline it overrides with an empty acquire set).
    pipeline_variant: PipelineVariant
    #: Null detectors force zero acquires per function — maximally
    #: pruned placements that exist to prove the soundness oracle fires.
    null_detector: bool = False
    #: Does the paper's theory claim this variant's placements are
    #: sound for legacy-DRF programs?
    trusted: bool = False
    description: str = ""

    def placer(
        self,
        model: MemoryModel = X86_TSO,
        interprocedural: bool = False,
        backend=None,
        synthesis: str = "greedy",
    ) -> FencePlacer:
        return FencePlacer(
            self.pipeline_variant, model, interprocedural, backend, synthesis
        )

    def analyze(
        self,
        program: Program,
        model: MemoryModel = X86_TSO,
        context: AnalysisContext | None = None,
        interprocedural: bool = False,
    ) -> ProgramAnalysis:
        """Run this variant's pipeline on ``program`` without mutation."""
        placer = self.placer(model, interprocedural)
        if not self.null_detector:
            return placer.analyze(program, context=context)
        ctx = context if context is not None else AnalysisContext(program)
        result = ProgramAnalysis(program, self.pipeline_variant, model)
        for name, func in program.functions.items():
            result.functions[name] = placer.analyze_function(
                func, sync_reads_override=OrderedSet(), context=ctx
            )
        return result

    def place(
        self,
        program: Program,
        model: MemoryModel = X86_TSO,
        context: AnalysisContext | None = None,
        interprocedural: bool = False,
        backend=None,
        synthesis: str = "greedy",
    ) -> ProgramAnalysis:
        """Run the pipeline and insert the fences (mutates ``program``;
        a supplied ``context`` is refreshed, so it stays valid). With
        an arch ``backend``, fences go in flavored (cheapest sufficient
        flavor per delay cut); ``synthesis="optimal"`` swaps in the
        min-cost placements of :mod:`repro.synth`."""
        if not self.null_detector:
            # Delegate so the pipeline's post-insertion context refresh
            # applies here too (this is the path Session.place uses).
            return self.placer(model, interprocedural, backend, synthesis).place(
                program, context=context
            )
        result = self.analyze(program, model, context, interprocedural)
        insert_planned_fences(result, backend, synthesis=synthesis)
        if context is not None:
            context.refresh()
        return result


#: kind "variant" keeps lookup errors byte-compatible with the old
#: ``unknown variant 'x'; known: ...`` messages every surface printed.
VARIANTS: Registry[DetectionVariant] = Registry("variant")


def register_variant(entry: DetectionVariant) -> DetectionVariant:
    return VARIANTS.register(entry.key, entry)


register_variant(
    DetectionVariant(
        key=PipelineVariant.PENSIEVE.value,
        pipeline_variant=PipelineVariant.PENSIEVE,
        trusted=True,
        description="Pensieve baseline: every escaping read is a "
        "potential acquire; nothing prunes.",
    )
)
register_variant(
    DetectionVariant(
        key=PipelineVariant.CONTROL.value,
        pipeline_variant=PipelineVariant.CONTROL,
        description="Control-signature acquires only (paper Listing 1); "
        "misses pure address acquires.",
    )
)
register_variant(
    DetectionVariant(
        key=PipelineVariant.ADDRESS_CONTROL.value,
        pipeline_variant=PipelineVariant.ADDRESS_CONTROL,
        trusted=True,
        description="Control + address signatures (paper Listing 3): "
        "detects every acquire by Theorem 3.1.",
    )
)
register_variant(
    DetectionVariant(
        key="vanilla",
        pipeline_variant=PipelineVariant.CONTROL,
        null_detector=True,
        description="Deliberately-disabled detector (no acquires at "
        "all); exists to prove the differential oracle can fire.",
    )
)


def get_variant(key: str) -> DetectionVariant:
    return VARIANTS.get(key)


def variant_keys() -> tuple[str, ...]:
    """Every registered variant key, in registration order."""
    return VARIANTS.keys()


def pipeline_variant_keys() -> tuple[str, ...]:
    """Variants that make sense as analysis targets (null detectors
    excluded) — the batch/analyze choice set."""
    return tuple(k for k, v in VARIANTS.items() if not v.null_detector)


def detection_variant_keys() -> tuple[str, ...]:
    """Every variant the differential oracle can exercise, null
    detectors first (the historical ``DETECTION_VARIANTS`` order)."""
    null = tuple(k for k, v in VARIANTS.items() if v.null_detector)
    rest = tuple(k for k, v in VARIANTS.items() if not v.null_detector)
    return null + rest


def trusted_variant_keys() -> tuple[str, ...]:
    """Variants whose placements the paper claims sound, sorted (the
    historical ``TRUSTED_VARIANTS`` order)."""
    return tuple(sorted(k for k, v in VARIANTS.items() if v.trusted))
