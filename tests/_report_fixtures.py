"""Fixed wire-payload instances shared by the round-trip/golden tests
and the golden-file generator (``python tools/gen_golden_reports.py``).

Every value is deliberately constant — goldens must not depend on
analysis results, timing, or machine — while still exercising nested
dataclasses, tuples, dicts, None fields, and floats.
"""

from repro.api import (
    AnalyzeReport,
    AnalyzeRequest,
    BatchCell,
    BatchReport,
    BatchRequest,
    CacheStats,
    CheckReport,
    CheckRequest,
    Finding,
    FunctionFences,
    FuzzProblem,
    FuzzReport,
    FuzzRequest,
    FuzzViolation,
    LintReport,
    LintRequest,
    ProgramSpec,
    SimulateReport,
    SimulateRequest,
    SourceSpan,
    VariantCheck,
)


def sample_payloads() -> dict:
    """kind -> fixed instance, one per registered wire type."""
    spec = ProgramSpec.inline("global int x;\n", name="sample")
    analyze_request = AnalyzeRequest(
        program=spec, variant="control", model="x86-tso", annotations=True,
        arch="power", synthesis="optimal",
    )
    analyze_report = AnalyzeReport(
        program="sample",
        variant="control",
        model="x86-tso",
        interprocedural=False,
        functions=(
            FunctionFences("producer", 0, 0, 1, 1, 0, 1),
            FunctionFences("consumer", 2, 1, 1, 1, 1, 1),
        ),
        escaping_reads=2,
        sync_reads=1,
        orderings=2,
        pruned_orderings=2,
        surviving_fraction=0.5,
        full_fences=1,
        compiler_fences=2,
        annotations="consumer: acquire @flag",
        fenced_ir=None,
        cache_stats=CacheStats(
            hits=9, misses=5, by_fact={"acquires": 1, "points_to": 2}
        ),
        arch="power",
        fence_cost=113,
        flavors={"lwsync": 1, "sync": 1},
        synthesis="optimal",
        greedy_cost=160,
    )
    check_request = CheckRequest(
        program=spec, model="pso", max_states=5000, arch="x86"
    )
    check_report = CheckReport(
        program="sample",
        model="pso",
        max_states=5000,
        complete=True,
        skipped=None,
        sc_outcomes=1,
        weak_outcomes_unfenced=2,
        weak_breaks_unfenced=True,
        variants=(
            VariantCheck("pensieve", 2, 1, True),
            VariantCheck("control", 2, 1, False, complete=False),
        ),
        arch="x86",
    )
    simulate_request = SimulateRequest(
        program=spec, placement="manual", observe_globals=("flag",),
        arch="arm",
    )
    simulate_report = SimulateReport(
        program="sample",
        placement="manual",
        model="x86-tso",
        cycles=75,
        instructions=21,
        full_fences_executed=1,
        compiler_fences_executed=0,
        fence_stall_cycles=0,
        observations=((1, (("r", 1),)),),
        final_globals=(("data", 1), ("flag", 1)),
        observe_globals=("flag",),
        arch="arm",
    )
    batch_request = BatchRequest(programs=("fft",), variants=("control",))
    batch_report = BatchReport(
        programs=("fft",),
        variants=("control",),
        models=("x86-tso",),
        used_pool=False,
        wall=0.25,
        cells=(
            BatchCell(
                program="fft",
                variant="control",
                model="x86-tso",
                key="0" * 64,
                functions=10,
                escaping_reads=100,
                sync_reads=10,
                orderings=9262,
                pruned_orderings=3396,
                surviving_fraction=0.3666,
                full_fences=4,
                compiler_fences=58,
                elapsed=0.04,
                cached=False,
                fence_cost=240,
                flavors={"mfence": 4},
                greedy_cost=240,
                optimal_cost=220,
            ),
        ),
        cache_stats=None,
        arch=None,
        synthesis="greedy",
    )
    fuzz_request = FuzzRequest(
        seeds=2, shapes=("publish",), variants=("vanilla",), budget=30.0
    )
    fuzz_report = FuzzReport(
        seeds=1,
        shapes=("dekker",),
        variants=("vanilla",),
        models=("x86-tso",),
        budget=None,
        cases_run=1,
        cases_skipped=0,
        errors=0,
        incomplete=1,
        budget_exhausted=False,
        used_pool=False,
        wall=1.5,
        variant_summary={
            "vanilla": {
                "checked": 1,
                "violations": 1,
                "restored_sc": 0,
                "full_fences": 0,
                "fences_saved": 9,
                "mean_fences_saved": 9.0,
            }
        },
        violations=(
            FuzzViolation(
                seed=0,
                shape="dekker",
                model="x86-tso",
                variant="vanilla",
                source="global int x;\n",
                source_lines=1,
                snippet="LitmusTest(name='dekker-vanilla')",
                shrink_checks=12,
            ),
        ),
        problems=(
            FuzzProblem("incomplete", "dekker", 0, "x86-tso",
                        "SC state space exceeded max_states"),
        ),
        cases=({"seed": 0, "shape": "dekker", "violations": []},),
    )
    lint_request = LintRequest(
        program=spec, variant="address+control", model="pso",
        arch="power", passes=("racy-access-pair",), confirm=True,
        max_traces=100, max_actions=200, fail_on="warning", stats=True,
    )
    lint_report = LintReport(
        program="sample",
        variant="address+control",
        model="pso",
        passes=("racy-access-pair", "redundant-fence"),
        findings=(
            Finding(
                code="RACE001",
                severity="error",
                message="conflicting unsynchronized accesses to 'x' may race",
                spans=(
                    SourceSpan("p1", "entry", 4, 7, "store @x, 1"),
                    SourceSpan("p2", "entry", 5, 12, "%2 = load @x"),
                ),
                pass_id="racy-access-pair",
                verdict="confirmed",
                witness="* T0 store x = 1\n* T1 load x = 1",
            ),
            Finding(
                code="FENCE101",
                severity="note",
                message="redundant fence: no memory access since the "
                        "previous barrier",
                spans=(SourceSpan("p1", "entry", 6, 9, "fence"),),
                pass_id="redundant-fence",
            ),
        ),
        notes=1,
        warnings=0,
        errors=1,
        confirmed_races=1,
        refuted_candidates=0,
        unknown_candidates=0,
        explorer_complete=True,
        traces_checked=96,
        fuzz_seed=None,
        fail_on="warning",
        arch="power",
        cache_stats=CacheStats(
            hits=4, misses=2, by_fact={"race_candidates": 1}
        ),
    )
    samples = [
        analyze_request, analyze_report,
        check_request, check_report,
        simulate_request, simulate_report,
        batch_request, batch_report,
        fuzz_request, fuzz_report,
        lint_request, lint_report,
    ]
    return {s.KIND: s for s in samples}
