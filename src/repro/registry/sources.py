"""The program-source catalog: where analysis inputs come from.

A :class:`ProgramSpec` is the wire-format description of one program —
a built-in corpus workload, a mini-C file on disk, inline source text,
or a named litmus test — and the ``SOURCE_KINDS`` registry maps each
``kind`` to its resolver. Requests in :mod:`repro.api` embed specs, so
a serialized :class:`~repro.api.AnalyzeRequest` replays anywhere the
referenced source resolves. New source kinds (URLs, archives,
databases) plug in by registering a resolver.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

from repro.registry.core import Registry


@dataclass(frozen=True)
class ProgramSpec:
    """A serializable reference to one analyzable program."""

    kind: str
    #: Corpus/litmus name, or the display name for file/inline sources.
    name: str = ""
    path: str | None = None
    source: str | None = None
    #: Keep explicit ``fence;`` statements (the expert placement).
    manual_fences: bool = False

    # --- constructors -----------------------------------------------------
    @staticmethod
    def corpus(name: str, manual_fences: bool = False) -> "ProgramSpec":
        """A workload from the built-in 17-program registry."""
        return ProgramSpec(kind="corpus", name=name, manual_fences=manual_fences)

    @staticmethod
    def file(path: str, name: str = "", manual_fences: bool = False) -> "ProgramSpec":
        """A mini-C file on disk (name defaults to the file stem)."""
        return ProgramSpec(
            kind="file", name=name, path=str(path), manual_fences=manual_fences
        )

    @staticmethod
    def inline(source: str, name: str = "inline", manual_fences: bool = False) -> "ProgramSpec":
        """Inline mini-C source text."""
        return ProgramSpec(
            kind="inline", name=name, source=source, manual_fences=manual_fences
        )

    @staticmethod
    def litmus(name: str, manual_fences: bool = False) -> "ProgramSpec":
        """A named test from the litmus corpus."""
        return ProgramSpec(kind="litmus", name=name, manual_fences=manual_fences)

    # --- wire format ------------------------------------------------------
    def to_payload(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_payload(payload: dict) -> "ProgramSpec":
        return ProgramSpec(**payload)


@dataclass(frozen=True)
class ResolvedSource:
    """A spec resolved down to compilable text."""

    name: str
    source: str


SOURCE_KINDS: Registry[Callable[[ProgramSpec], ResolvedSource]] = Registry(
    "program source kind"
)


@SOURCE_KINDS.register("corpus")
def _resolve_corpus(spec: ProgramSpec) -> ResolvedSource:
    from repro.programs.registry import get_program

    return ResolvedSource(spec.name, get_program(spec.name).source)


@SOURCE_KINDS.register("file")
def _resolve_file(spec: ProgramSpec) -> ResolvedSource:
    if not spec.path:
        raise ValueError("file program spec requires a path")
    path = Path(spec.path)
    return ResolvedSource(
        spec.name or path.stem, path.read_text(encoding="utf-8")
    )


@SOURCE_KINDS.register("inline")
def _resolve_inline(spec: ProgramSpec) -> ResolvedSource:
    if spec.source is None:
        raise ValueError("inline program spec requires source text")
    return ResolvedSource(spec.name or "inline", spec.source)


@SOURCE_KINDS.register("litmus")
def _resolve_litmus(spec: ProgramSpec) -> ResolvedSource:
    from repro.memmodel.litmus import LITMUS_TESTS

    try:
        test = LITMUS_TESTS[spec.name]
    except KeyError:
        raise KeyError(
            f"unknown litmus test {spec.name!r}; "
            f"known: {', '.join(LITMUS_TESTS)}"
        ) from None
    return ResolvedSource(spec.name, test.source)


def resolve_spec(spec: ProgramSpec) -> ResolvedSource:
    """Resolve any :class:`ProgramSpec` through the source-kind registry."""
    return SOURCE_KINDS.get(spec.kind)(spec)
