"""Convenience builder for constructing IR functions programmatically.

Used by the frontend's lowering pass and by tests that hand-build the
paper's examples (MP, MP-with-pointers, Dekker, the Fig. 2 worked
example).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    AtomicAdd,
    AtomicXchg,
    BinOp,
    Br,
    Call,
    Cmp,
    CmpXchg,
    Fence,
    FenceKind,
    FenceOrigin,
    Gep,
    Instruction,
    Jump,
    Load,
    Observe,
    Ret,
    Store,
)
from repro.ir.values import Constant, GlobalRef, Register, Value


class IRBuilder:
    """Builds one function; tracks the current insertion block."""

    def __init__(self, name: str, param_names: Sequence[str] = ()) -> None:
        self._reg_counter = 0
        self._label_counter = 0
        params = tuple(Register(p) for p in param_names)
        self.function = Function(name, params)
        self.current: Optional[BasicBlock] = None

    # --- registers, labels, blocks ---------------------------------------
    def fresh_reg(self, hint: str = "") -> Register:
        name = f"{hint}{self._reg_counter}" if hint else str(self._reg_counter)
        self._reg_counter += 1
        return Register(name)

    def fresh_label(self, hint: str = "bb") -> str:
        label = f"{hint}{self._label_counter}"
        self._label_counter += 1
        return label

    def block(self, label: Optional[str] = None) -> BasicBlock:
        """Create a new block (does not switch insertion point)."""
        return self.function.add_block(label or self.fresh_label())

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.current = block
        return block

    def new_block(self, label: Optional[str] = None) -> BasicBlock:
        """Create a new block and make it current."""
        return self.set_block(self.block(label))

    def _append(self, inst: Instruction) -> Instruction:
        if self.current is None:
            raise ValueError("no current block; call new_block() first")
        return self.current.append(inst)

    # --- value helpers ----------------------------------------------------
    @staticmethod
    def const(value: int) -> Constant:
        return Constant(value)

    @staticmethod
    def global_addr(name: str) -> GlobalRef:
        return GlobalRef(name)

    # --- instructions -------------------------------------------------------
    def alloca(self, size: int = 1, var_name: str = "") -> Register:
        dest = self.fresh_reg()
        self._append(Alloca(dest, size, var_name))
        return dest

    def load(self, addr: Value, ordering: Optional[str] = None) -> Register:
        dest = self.fresh_reg()
        self._append(Load(dest, addr, ordering))
        return dest

    def store(
        self, addr: Value, value: Value, ordering: Optional[str] = None
    ) -> None:
        self._append(Store(addr, value, ordering))

    def binop(self, op: str, lhs: Value, rhs: Value) -> Register:
        dest = self.fresh_reg()
        self._append(BinOp(dest, op, lhs, rhs))
        return dest

    def cmp(self, op: str, lhs: Value, rhs: Value) -> Register:
        dest = self.fresh_reg()
        self._append(Cmp(dest, op, lhs, rhs))
        return dest

    def gep(self, base: Value, offset: Value) -> Register:
        dest = self.fresh_reg()
        self._append(Gep(dest, base, offset))
        return dest

    def br(self, cond: Value, true_label: str, false_label: str) -> None:
        self._append(Br(cond, true_label, false_label))

    def jump(self, target: str) -> None:
        self._append(Jump(target))

    def ret(self, value: Optional[Value] = None) -> None:
        self._append(Ret(value))

    def call(
        self, callee: str, args: Sequence[Value], returns: bool = False
    ) -> Optional[Register]:
        dest = self.fresh_reg() if returns else None
        self._append(Call(dest, callee, args))
        return dest

    def fence(
        self,
        kind: FenceKind = FenceKind.FULL,
        origin: FenceOrigin = FenceOrigin.INSERTED,
        flavor: Optional[str] = None,
    ) -> None:
        self._append(Fence(kind, origin, flavor))

    def cmpxchg(self, addr: Value, expected: Value, new: Value) -> Register:
        dest = self.fresh_reg()
        self._append(CmpXchg(dest, addr, expected, new))
        return dest

    def xchg(self, addr: Value, value: Value) -> Register:
        dest = self.fresh_reg()
        self._append(AtomicXchg(dest, addr, value))
        return dest

    def fetch_add(self, addr: Value, value: Value) -> Register:
        dest = self.fresh_reg()
        self._append(AtomicAdd(dest, addr, value))
        return dest

    def observe(self, label: str, value: Value) -> None:
        self._append(Observe(label, value))

    # --- finishing ---------------------------------------------------------
    def build(self) -> Function:
        """Terminate any fall-through block with ``ret`` and finalize."""
        for block in self.function.blocks:
            if not block.is_terminated():
                block.append(Ret(None))
        return self.function.finalize()
