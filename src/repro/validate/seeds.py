"""Fuzz-seed corpus fed by the static race detector's misses.

When ``repro lint`` confirms a dynamic race on a program the static
DRF gate would have *passed* (a RACE002 finding), the program is
exactly the kind of counterexample the differential fuzzer should keep
hammering on: the detector's blind spot, written down as source. This
module is that corpus — an in-process, insertion-ordered store the
lint pipeline records into and the validation harness replays from.

The store is content-deduplicated (the same gap reported twice is one
seed) and bounded, so a long-lived ``repro serve`` daemon linting
thousands of programs cannot grow it without limit.
"""

from __future__ import annotations

import hashlib
import threading

_MAX_SEEDS = 256

_lock = threading.Lock()
_seeds: dict[str, tuple[str, str]] = {}  # digest -> (name, source)


def record_seed(name: str, source: str) -> str:
    """Record a detector-gap program; returns its stable seed key.

    Idempotent on content: re-recording the same source (under any
    name) returns the existing key. The oldest seed is dropped once
    the store is full.
    """
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    with _lock:
        if digest not in _seeds:
            while len(_seeds) >= _MAX_SEEDS:
                _seeds.pop(next(iter(_seeds)))
            _seeds[digest] = (name, source)
    return digest


def all_seeds() -> tuple[tuple[str, str, str], ...]:
    """Every recorded seed as ``(key, name, source)``, oldest first."""
    with _lock:
        return tuple(
            (key, name, source) for key, (name, source) in _seeds.items()
        )


def seed_count() -> int:
    with _lock:
        return len(_seeds)


def clear_seeds() -> None:
    """Empty the store (test isolation)."""
    with _lock:
        _seeds.clear()
