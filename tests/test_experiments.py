"""Tests for the experiment harness (Table II, Figs 2/7/8/9/10).

The aggregate assertions check the paper's *shape*: which variant wins,
rough magnitudes, and the named per-program extremes — not absolute
hardware numbers (our substrate is a simulator).
"""

import pytest

from repro.core.pipeline import PipelineVariant
from repro.experiments import expected, fig2_example, fig7, fig8, fig9, fig10, table2
from repro.programs import all_programs

# A 4-program subset keeps Fig-10 style tests fast; full-suite runs
# live in the benchmark harness.
SUBSET_NAMES = ("fft", "water-nsquared", "raytrace", "matrix")


@pytest.fixture(scope="module")
def subset():
    programs = all_programs()
    return {name: programs[name] for name in SUBSET_NAMES}


@pytest.fixture(scope="module")
def fig7_full():
    return fig7.run()


@pytest.fixture(scope="module")
def fig8_full():
    return fig8.run()


@pytest.fixture(scope="module")
def fig9_full():
    return fig9.run()


# --- Table II --------------------------------------------------------------


def test_table2_all_rows_match_paper():
    rows = table2.run()
    assert len(rows) == 9
    for row in rows:
        assert row.matches_paper, row.kernel


def test_table2_no_pure_address_anywhere():
    assert not any(r.has_pure_addr for r in table2.run())


def test_table2_render():
    text = table2.render()
    assert "chase-lev-wsq" in text
    assert "MISMATCH" not in text


# --- Fig. 7 ---------------------------------------------------------------------


def test_fig7_control_below_address_control(fig7_full):
    for row in fig7_full.rows:
        assert row.control_fraction <= row.address_control_fraction, row.program


def test_fig7_geomeans_near_paper(fig7_full):
    assert fig7_full.geomean_control == pytest.approx(
        expected.FIG7_GEOMEAN_CONTROL, abs=0.06
    )
    assert fig7_full.geomean_address_control == pytest.approx(
        expected.FIG7_GEOMEAN_ADDRESS_CONTROL, abs=0.10
    )


def test_fig7_extremes_match_paper(fig7_full):
    by_name = {r.program: r for r in fig7_full.rows}
    best = min(fig7_full.rows, key=lambda r: r.control_fraction)
    worst = max(fig7_full.rows, key=lambda r: r.control_fraction)
    assert best.program == expected.FIG7_BEST_CONTROL[0]
    assert worst.program == expected.FIG7_WORST_CONTROL[0]
    assert by_name["water-spatial"].address_control_fraction == pytest.approx(
        expected.FIG7_BEST_ADDRESS_CONTROL[1], abs=0.05
    )


def test_fig7_render(fig7_full):
    text = fig7.render(fig7_full)
    assert "geomean" in text
    assert "water-nsquared" in text


# --- Fig. 8 -------------------------------------------------------------------------


def test_fig8_pruning_monotone(fig8_full):
    for row in fig8_full.rows:
        pen = row.total(PipelineVariant.PENSIEVE)
        ac = row.total(PipelineVariant.ADDRESS_CONTROL)
        ctl = row.total(PipelineVariant.CONTROL)
        assert ctl <= ac <= pen, row.program


def test_fig8_rw_ww_untouched(fig8_full):
    # r->w and w->w orderings are never pruned (writes stay releases).
    from repro.core.machine_models import OrderKind

    for row in fig8_full.rows:
        for kind in (OrderKind.RW, OrderKind.WW):
            assert (
                row.counts[PipelineVariant.CONTROL][kind]
                == row.counts[PipelineVariant.PENSIEVE][kind]
            ), (row.program, kind)


def test_fig8_geomeans_in_band(fig8_full):
    ctl = fig8_full.geomean_surviving(PipelineVariant.CONTROL)
    ac = fig8_full.geomean_surviving(PipelineVariant.ADDRESS_CONTROL)
    assert ctl == pytest.approx(expected.FIG8_GEOMEAN_CONTROL, abs=0.10)
    assert ac == pytest.approx(expected.FIG8_GEOMEAN_ADDRESS_CONTROL, abs=0.15)


def test_fig8_render(fig8_full):
    assert "surviving orderings geomean" in fig8.render(fig8_full)


# --- Fig. 9 ---------------------------------------------------------------------------


def test_fig9_fence_reduction_everywhere(fig9_full):
    for row in fig9_full.rows:
        assert row.control_fences <= row.pensieve_fences, row.program
        assert row.address_control_fences <= row.pensieve_fences, row.program
        assert row.control_fences <= row.address_control_fences, row.program


def test_fig9_control_beats_address_control_overall(fig9_full):
    assert fig9_full.geomean_control < fig9_full.geomean_address_control


def test_fig9_manual_is_small(fig9_full):
    # Manual placement is minimal in *runtime* terms (Fig. 10), not
    # necessarily in static count: Control can go below it statically
    # because locked RMWs double as fences on x86. Statically, manual
    # must still be far below Pensieve.
    for row in fig9_full.rows:
        assert row.manual_fences <= row.pensieve_fences / 2, row.program


def test_fig9_render(fig9_full):
    assert "Fig. 9" in fig9.render(fig9_full)


# --- Fig. 10 (subset for speed) ----------------------------------------------------


@pytest.fixture(scope="module")
def fig10_subset(subset):
    return fig10.run(subset)


def test_fig10_ordering_of_variants(fig10_subset):
    for row in fig10_subset.rows:
        assert row.normalized("pensieve") >= row.normalized("control") * 0.99, row.program
        assert row.normalized("control") >= 0.95, row.program  # manual is fastest


def test_fig10_pensieve_slowest_on_average(fig10_subset):
    assert fig10_subset.geomean("pensieve") >= fig10_subset.geomean("address+control")
    assert fig10_subset.geomean("address+control") >= fig10_subset.geomean("control")


def test_fig10_dynamic_fences_track_static(fig10_subset):
    for row in fig10_subset.rows:
        assert row.fences_executed["pensieve"] >= row.fences_executed["control"]


def test_fig10_matrix_is_pensieve_extreme(fig10_subset):
    matrix = next(r for r in fig10_subset.rows if r.program == "matrix")
    speedup = matrix.cycles["pensieve"] / matrix.cycles["control"]
    assert speedup > 1.8  # paper: 2.64x; shape, not exact magnitude


def test_fig10_render(fig10_subset):
    text = fig10.render(fig10_subset)
    assert "normalized to manual" in text


# --- Fig. 2 worked example -----------------------------------------------------------


def test_fig2_matches_paper_exactly():
    result = fig2_example.run()
    assert result.delay_set_fences == expected.FIG2_DELAY_SET_FENCES
    assert result.pruned_fences == expected.FIG2_PRUNED_FENCES
    assert result.matches_paper


def test_fig2_only_consumer_side_has_acquires():
    result = fig2_example.run()
    assert result.acquires_per_function["p1"] == 0
    assert result.acquires_per_function["p2"] >= 1


def test_fig2_render():
    assert "matches paper: True" in fig2_example.render()
