"""Basic blocks, functions, global variables, and whole programs.

A :class:`Program` is the unit the end-to-end pipeline operates on: a
set of global (shared) variables, a set of functions, and a static list
of thread entry points. Static threads are sufficient for the paper's
workloads (litmus tests, synchronization kernels, benchmark models) and
keep the memory-model explorers finite.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.ir.instructions import Instruction, Jump, Br, Ret
from repro.ir.values import Register


class BasicBlock:
    """A labeled straight-line instruction sequence ending in a terminator."""

    __slots__ = ("label", "instructions", "parent", "index")

    def __init__(self, label: str) -> None:
        self.label = label
        self.instructions: list[Instruction] = []
        self.parent: Optional["Function"] = None
        self.index: int = -1  # position within the parent function

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated():
            raise ValueError(f"block {self.label} already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, pos: int, inst: Instruction) -> Instruction:
        """Insert at ``pos`` (used by fence insertion)."""
        inst.parent = self
        self.instructions.insert(pos, inst)
        return inst

    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator()

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.is_terminated():
            return self.instructions[-1]
        return None

    def successor_labels(self) -> tuple[str, ...]:
        term = self.terminator
        if isinstance(term, Br):
            if term.true_label == term.false_label:
                return (term.true_label,)
            return (term.true_label, term.false_label)
        if isinstance(term, Jump):
            return (term.target,)
        return ()  # Ret or unterminated

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.instructions)} insts)>"


class Function:
    """A function: parameters (registers) and an ordered list of blocks.

    ``finalize()`` assigns stable instruction uids and block indices;
    analyses require a finalized function. Mutating passes (fence
    insertion) call ``finalize()`` again after editing.
    """

    __slots__ = ("name", "params", "blocks", "_blocks_by_label", "_positions")

    def __init__(self, name: str, params: Sequence[Register] = ()) -> None:
        self.name = name
        self.params = tuple(params)
        self.blocks: list[BasicBlock] = []
        self._blocks_by_label: dict[str, BasicBlock] = {}
        self._positions: dict[int, tuple[int, int]] = {}

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, label: str) -> BasicBlock:
        if label in self._blocks_by_label:
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        block.parent = self
        self.blocks.append(block)
        self._blocks_by_label[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        return self._blocks_by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._blocks_by_label

    def finalize(self) -> "Function":
        """Assign block indices and instruction uids/positions."""
        self._positions.clear()
        uid = 0
        for bi, block in enumerate(self.blocks):
            block.index = bi
            for ii, inst in enumerate(block.instructions):
                inst.uid = uid
                self._positions[id(inst)] = (bi, ii)
                uid += 1
        return self

    def position(self, inst: Instruction) -> tuple[int, int]:
        """(block index, index within block) of a finalized instruction."""
        try:
            return self._positions[id(inst)]
        except KeyError:
            raise KeyError(
                f"instruction {inst!r} not in finalized function {self.name}"
            ) from None

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def memory_accesses(self) -> list[Instruction]:
        """All loads, stores, and RMWs in block/statement order."""
        return [i for i in self.instructions() if i.is_memory_access()]

    def returns_value(self) -> bool:
        return any(
            isinstance(inst, Ret) and inst.value is not None
            for inst in self.instructions()
        )

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class GlobalVar:
    """A shared global variable: a scalar (size 1) or contiguous array.

    Initializer entries are ints, or ``("&", name)`` tuples denoting
    the address of another global (resolved when memory is laid out).
    """

    __slots__ = ("name", "size", "init")

    def __init__(self, name: str, size: int = 1, init: Sequence | int = 0) -> None:
        if size < 1:
            raise ValueError("global size must be >= 1")
        self.name = name
        self.size = size
        if isinstance(init, int):
            self.init = tuple([init] * size)
        else:
            init = tuple(init)
            if len(init) != size:
                raise ValueError(
                    f"init length {len(init)} does not match size {size} for {name}"
                )
            for entry in init:
                if not isinstance(entry, int) and not (
                    isinstance(entry, tuple)
                    and len(entry) == 2
                    and entry[0] == "&"
                    and isinstance(entry[1], str)
                ):
                    raise ValueError(f"bad initializer entry {entry!r} for {name}")
            self.init = init

    def __repr__(self) -> str:
        return f"<GlobalVar @{self.name}[{self.size}]>"


class ThreadSpec:
    """A static thread: entry function name plus integer arguments."""

    __slots__ = ("func_name", "args")

    def __init__(self, func_name: str, args: Sequence[int] = ()) -> None:
        self.func_name = func_name
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"<Thread {self.func_name}{self.args}>"


class Program:
    """A whole multithreaded program (the analysis and execution unit)."""

    __slots__ = ("name", "globals", "functions", "threads")

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.globals: dict[str, GlobalVar] = {}
        self.functions: dict[str, Function] = {}
        self.threads: list[ThreadSpec] = []

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise ValueError(f"duplicate global {var.name!r}")
        self.globals[var.name] = var
        return var

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def add_thread(self, func_name: str, args: Iterable[int] = ()) -> ThreadSpec:
        spec = ThreadSpec(func_name, tuple(args))
        self.threads.append(spec)
        return spec

    def finalize(self) -> "Program":
        for func in self.functions.values():
            func.finalize()
        return self

    def fences(self) -> list[Instruction]:
        """All fence instructions across the program, in stable order."""
        result = []
        for name in sorted(self.functions):
            for inst in self.functions[name].instructions():
                if inst.is_fence():
                    result.append(inst)
        return result

    def __repr__(self) -> str:
        return (
            f"<Program {self.name}: {len(self.globals)} globals, "
            f"{len(self.functions)} functions, {len(self.threads)} threads>"
        )
