"""Fig. 10: simulated execution time normalized to manual placement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api.session import Session
from repro.experiments import expected
from repro.programs.registry import BenchProgram, all_programs
from repro.simulator.costmodel import DEFAULT_COSTS, CostModel
from repro.simulator.machine import SimStats
from repro.util.stats import geomean
from repro.util.text import ascii_bar_chart, format_table

# "manual" compiles the expert fences; the rest run the pipeline.
SERIES = ("manual", "pensieve", "address+control", "control")


@dataclass(frozen=True)
class Fig10Row:
    program: str
    cycles: dict[str, int]  # series -> simulated cycles
    fences_executed: dict[str, int]  # dynamic full-fence executions

    def normalized(self, series: str) -> float:
        return self.cycles[series] / max(1, self.cycles["manual"])


@dataclass
class Fig10Result:
    rows: list[Fig10Row]

    def geomean(self, series: str) -> float:
        return geomean([r.normalized(series) for r in self.rows])


def simulate_variant(
    program: BenchProgram,
    series: str,
    costs: CostModel = DEFAULT_COSTS,
    session: Session | None = None,
) -> SimStats:
    session = session if session is not None else Session()
    if series == "manual":
        ir = program.compile(manual_fences=True)
    else:
        # The series names are detection-variant registry keys.
        ir = program.compile(manual_fences=False)
        session.place(ir, series)
    return session.timed_simulation(ir, costs)


def run_program(
    program: BenchProgram,
    costs: CostModel = DEFAULT_COSTS,
    session: Session | None = None,
) -> Fig10Row:
    session = session if session is not None else Session()
    cycles = {}
    fences = {}
    for series in SERIES:
        stats = simulate_variant(program, series, costs, session)
        cycles[series] = stats.cycles
        fences[series] = stats.full_fences_executed
    return Fig10Row(program=program.name, cycles=cycles, fences_executed=fences)


def run(
    programs: Optional[dict[str, BenchProgram]] = None,
    costs: CostModel = DEFAULT_COSTS,
) -> Fig10Result:
    programs = programs if programs is not None else all_programs()
    return Fig10Result([run_program(p, costs) for p in programs.values()])


def render(result: Fig10Result | None = None) -> str:
    result = result if result is not None else run()
    rows = []
    for r in result.rows:
        rows.append(
            [
                r.program,
                r.cycles["manual"],
                f"{r.normalized('pensieve'):.2f}x",
                f"{r.normalized('address+control'):.2f}x",
                f"{r.normalized('control'):.2f}x",
                r.fences_executed["pensieve"],
                r.fences_executed["control"],
            ]
        )
    rows.append(
        [
            "geomean",
            "",
            f"{result.geomean('pensieve'):.2f}x",
            f"{result.geomean('address+control'):.2f}x",
            f"{result.geomean('control'):.2f}x",
            "",
            "",
        ]
    )
    table = format_table(
        [
            "program",
            "manual cycles",
            "Pensieve",
            "A+C",
            "Control",
            "dyn fences (Pen)",
            "dyn fences (Ctl)",
        ],
        rows,
        title="Fig. 10: execution time normalized to manual fence placement",
    )
    chart = ascii_bar_chart(
        {
            r.program: {
                "Pensieve": r.normalized("pensieve"),
                "Addr+Ctrl": r.normalized("address+control"),
                "Control": r.normalized("control"),
            }
            for r in result.rows
        },
        value_format="{:.2f}x",
    )
    footer = (
        f"\npaper geomeans: Pensieve {expected.FIG10_GEOMEAN_PENSIEVE:.2f}x, "
        f"Address+Control {expected.FIG10_GEOMEAN_ADDRESS_CONTROL:.2f}x, "
        f"Control {expected.FIG10_GEOMEAN_CONTROL:.2f}x"
    )
    return table + "\n\n" + chart + footer
