"""Span-based tracing with Chrome ``trace_event`` export.

One module-level :class:`Tracer` (installed by :func:`enable`) buffers
*complete* events: every ``with span(...)`` that finishes while
tracing is on appends one ``ph: "X"`` record with wall-clock ``ts``
and monotonic-measured ``dur`` (both in microseconds, the trace_event
convention). Nesting falls out of the format: Chrome's viewer stacks
events whose ``ts``/``dur`` ranges contain each other on the same
``pid``/``tid`` row, so spans opened inside the query engine's
thread-local dependency frames nest without any explicit parent ids.

Disabled — the default — the whole layer is a deterministic no-op:
:func:`span` reads one module global and returns one shared singleton
context manager whose enter/exit do nothing. No allocation, no
timestamp, no lock. ``tools/check_obs_overhead.py`` holds this path to
<2% of a cold ``bench_query`` run.

A **trace id** rides a :class:`contextvars.ContextVar`, so it scopes
correctly under both the threaded server (each request thread has its
own context) and the asyncio cluster frontend (each task does). The
frontend stamps the id into the worker request frame; the worker sets
it around dispatch and ships its buffered spans back in the response
frame, so one client request yields a single coherent flame across
processes.

The :data:`SLOW_QUERIES` log is tracing-independent: the query engine
always times misses, and any evaluation at or over the configured
threshold is recorded (query name, key, fingerprint, seconds) and
logged via :mod:`logging` — visible even when no tracer is installed.
"""

from __future__ import annotations

import contextvars
import json
import logging
import os
import secrets
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

_log = logging.getLogger("repro.obs")

#: Installed tracer, or ``None`` (the no-op fast path checks only this).
_tracer: "Tracer | None" = None

_trace_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return secrets.token_hex(8)


def current_trace_id() -> str | None:
    """The trace id bound to the current thread/task context."""
    return _trace_id.get()


class Tracer:
    """Thread-safe bounded buffer of completed trace events."""

    def __init__(self, buffer: int = 65536) -> None:
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=buffer)
        #: Total spans *started* against this tracer, never decremented
        #: (unlike the bounded buffer) — the overhead tool uses it to
        #: count how many ``span()`` calls a workload makes.
        self.started = 0

    def record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def ingest(self, events: list[dict]) -> None:
        """Adopt pre-built events (a worker's spans shipped over the
        link) preserving their original pid/tid/ts."""
        with self._lock:
            self._events.extend(e for e in events if isinstance(e, dict))

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def drain(self) -> list[dict]:
        """Pop and return everything buffered so far."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
            return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class _NoopSpan:
    """The shared do-nothing span (tracing disabled)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args: Any) -> None:
        """Discard late-bound span args."""


#: Singleton returned by :func:`span` whenever tracing is off.
NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span; records a complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_wall_us", "_t0")

    def __init__(self, tracer: Tracer, name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **args: Any) -> None:
        """Attach args discovered after the span opened."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._tracer.started += 1
        self._wall_us = time.time_ns() // 1000
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_us = (time.perf_counter_ns() - self._t0) // 1000
        args = self.args
        trace_id = _trace_id.get()
        if trace_id is not None:
            args = dict(args)
            args["trace"] = trace_id
        if exc_type is not None:
            args = dict(args)
            args["error"] = exc_type.__name__
        self._tracer.record(
            {
                "name": self.name,
                "cat": self.cat,
                "ph": "X",
                "ts": self._wall_us,
                "dur": dur_us,
                "pid": os.getpid(),
                "tid": threading.get_native_id(),
                "args": args,
            }
        )
        return False


def span(name: str, cat: str = "repro", **args: Any):
    """A context manager timing one named span.

    With tracing disabled this returns :data:`NOOP_SPAN` after a single
    global read — the deterministic fast path.
    """
    tracer = _tracer
    if tracer is None:
        return NOOP_SPAN
    return _Span(tracer, name, cat, args)


def enabled() -> bool:
    return _tracer is not None


def active() -> Tracer | None:
    return _tracer


def enable(buffer: int = 65536) -> Tracer:
    """Install (or return the already-installed) module tracer."""
    global _tracer
    if _tracer is None:
        _tracer = Tracer(buffer)
    return _tracer


def disable() -> Tracer | None:
    """Uninstall the tracer; returns it so callers can still export."""
    global _tracer
    tracer = _tracer
    _tracer = None
    return tracer


# --- request scoping ------------------------------------------------------
class _RequestScope:
    """Binds a trace id for the extent of one request."""

    __slots__ = ("id", "_token")

    def __init__(self, trace_id: str | None) -> None:
        self.id = trace_id

    def __enter__(self) -> str | None:
        self._token = _trace_id.set(self.id)
        return self.id

    def __exit__(self, *exc) -> bool:
        _trace_id.reset(self._token)
        return False


class _NoopScope:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SCOPE = _NoopScope()


def request_scope(trace_id: str | None = None):
    """Scope a trace id over one request's dispatch.

    * tracing off → a no-op scope yielding ``None``;
    * ``trace_id`` given (a propagated id from the wire) → bind it;
    * otherwise → keep the already-bound id, or mint a fresh one.
    """
    if _tracer is None:
        return _NOOP_SCOPE
    if trace_id is None:
        trace_id = _trace_id.get() or new_trace_id()
    return _RequestScope(trace_id)


# --- Chrome trace_event export --------------------------------------------
def chrome_trace(events: list[dict]) -> dict:
    """The Chrome ``trace_event`` JSON object for ``events``."""
    return {
        "traceEvents": sorted(events, key=lambda e: e.get("ts", 0)),
        "displayTimeUnit": "ms",
    }


def export_chrome(path: str | Path, events: list[dict]) -> None:
    """Write ``events`` as a ``chrome://tracing`` / Perfetto file."""
    Path(path).write_text(
        json.dumps(chrome_trace(events), sort_keys=True), encoding="utf-8"
    )


# --- slow-query log -------------------------------------------------------
class SlowQueryLog:
    """Bounded record of query evaluations over a configured threshold.

    ``threshold`` is seconds (``None`` disables, the default). The
    query engine calls :meth:`note` with every miss's elapsed time;
    entries name the query, its key, the input fingerprint (when the
    engine knows one), and the duration.
    """

    def __init__(self, threshold: float | None = None, capacity: int = 256) -> None:
        self.threshold = threshold
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)

    def note(
        self,
        query: str,
        key: str,
        fingerprint: str | None,
        seconds: float,
    ) -> None:
        entry = {
            "query": query,
            "key": key,
            "fingerprint": fingerprint,
            "seconds": round(seconds, 6),
        }
        with self._lock:
            self._entries.append(entry)
        _log.warning(
            "slow query %s(%s) took %.3fs (fingerprint %s)",
            query, key, seconds, fingerprint or "-",
        )

    def entries(self) -> list[dict]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: The process-wide slow-query log; ``repro serve --slow-query`` and
#: the cluster config set its threshold.
SLOW_QUERIES = SlowQueryLog()
