"""Shared per-program analysis context — now a query-engine facade.

Before this module existed, every pipeline stage built its own
``PointsTo``/``EscapeInfo``/``ReachabilityTable``; an
:class:`AnalysisContext` became the single construction site for those
facts. Since the :mod:`repro.query` engine landed, the context no
longer memoizes by hand: each fact kind is a registered *query*
(``points_to``, ``escape_info``, ``reachability``, ``writers_cache``,
``acquires``, ``interprocedural``) evaluated through a
:class:`~repro.query.engine.QueryEngine`, which records dependency
edges as they are read and invalidates at function granularity. The
context keeps its historical surface — consumers ask it for facts
exactly as before — plus:

* :meth:`refresh` — after mutating a function's IR in place,
  re-fingerprints the inputs and evicts exactly the stale query
  subgraph, so warm re-analysis recomputes only the edited function's
  facts (and anything, like the interprocedural fixpoint, that read
  them);
* ``cache_dir`` — an optional on-disk persistent query cache keyed by
  content fingerprint (used by long-lived sessions and ``repro
  serve``).

Facts are variant-independent except acquire detection, which is keyed
per ``(function, Variant)``. The context is bound to at most one
:class:`~repro.ir.function.Program`; loose functions (unit tests,
Table-II kernels) work too, but whole-program facts require a program.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.analysis.reachability import ReachabilityTable
from repro.ir.function import Function, Program
from repro.ir.instructions import Instruction
from repro.query.engine import QueryEngine

if TYPE_CHECKING:  # avoid import cycles; these are runtime-lazy below
    from repro.core.interprocedural import InterproceduralResult
    from repro.core.signatures import AcquireResult, Variant


@dataclass
class ContextStats:
    """Memoization counters (observable in tests and benchmarks)."""

    hits: int = 0
    misses: int = 0
    by_fact: dict[str, int] = field(default_factory=dict)

    def record(self, fact: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.by_fact[fact] = self.by_fact.get(fact, 0) + 1


class AnalysisContext:
    """Lazily computed, memoized per-function analysis facts.

    ``program`` is optional: a context can serve loose functions (unit
    tests, Table-II kernels), but whole-program facts — the
    interprocedural acquire fixpoint — require one. ``cache_dir``
    enables the engine's persistent query cache.
    """

    def __init__(
        self,
        program: Program | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.stats = ContextStats()
        self.engine = QueryEngine(program=program, cache_dir=cache_dir)
        self.engine.context = self
        self._local = threading.local()
        # Request-span exclusion: a whole analysis holds this while
        # structural edits (program splicing) also take it, so an
        # in-flight request never observes a half-spliced program.
        self.request_lock = threading.RLock()

    def adopt_engine(self, engine: QueryEngine) -> "AnalysisContext":
        """Wire this (possibly bare) facade onto an existing engine."""
        self.stats = ContextStats()
        self.engine = engine
        engine.context = self
        self._local = threading.local()
        self.request_lock = threading.RLock()
        return self

    @contextmanager
    def collect_stats(self):
        """Record this thread's fact hits/misses into a private
        :class:`ContextStats` for the duration — exact per-request
        counters even while other threads share the context."""
        previous = getattr(self._local, "collector", None)
        collector = ContextStats()
        self._local.collector = collector
        try:
            yield collector
        finally:
            self._local.collector = previous

    @property
    def program(self) -> Program | None:
        return self.engine.program

    @program.setter
    def program(self, program: Program | None) -> None:
        self.engine.program = program

    def _fact(self, name: str, key) -> object:
        value, hit = self.engine.lookup(name, key)
        with self.engine.lock:  # shared counters: no torn increments
            self.stats.record(name, hit)
            collector = getattr(self._local, "collector", None)
            if collector is not None:
                collector.record(name, hit)
        return value

    # --- per-function facts ----------------------------------------------
    def points_to(self, func: Function) -> PointsTo:
        return self._fact("points_to", func)

    def escape_info(self, func: Function) -> EscapeInfo:
        return self._fact("escape_info", func)

    def reachability(self, func: Function) -> ReachabilityTable:
        return self._fact("reachability", func)

    def writers_cache(self, func: Function) -> dict[int, list[Instruction]]:
        """The shared ``potential_writers`` memo for slicers over ``func``."""
        return self.engine.get("writers_cache", func)

    def acquires(self, func: Function, variant: "Variant") -> "AcquireResult":
        return self._fact("acquires", (func, variant))

    # --- whole-program facts ---------------------------------------------
    def interprocedural(self, variant: "Variant") -> "InterproceduralResult":
        if self.program is None:
            raise ValueError(
                "interprocedural acquire detection needs a whole program; "
                "construct the context with AnalysisContext(program)"
            )
        return self._fact("interprocedural", variant)

    # --- incremental invalidation ----------------------------------------
    def refresh(self) -> tuple[str, ...]:
        """Revalidate after in-place IR edits: evict the query subgraph
        of every changed function, keep everything else. Returns the
        changed functions' names."""
        return self.engine.refresh()

    def invalidate_function(self, func: Function) -> None:
        """Force-evict ``func``'s query subgraph."""
        self.engine.invalidate_function(func)
