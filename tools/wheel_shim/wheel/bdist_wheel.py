"""A minimal ``bdist_wheel`` command.

setuptools' ``editable_wheel`` only calls ``get_tag()`` and
``write_wheelfile()`` on this command; this project is pure Python, so
the tag is always ``py3-none-any``.
"""

from __future__ import annotations

import os
import shutil

from setuptools import Command

from wheel import __version__


def _requires_to_requires_dist(requires_path: str) -> list[str]:
    """Convert egg-info requires.txt sections into core-metadata lines."""
    lines: list[str] = []
    extra = ""
    marker = ""
    with open(requires_path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("[") and line.endswith("]"):
                section = line[1:-1]
                extra, _, marker = section.partition(":")
                if extra:
                    lines.append(f"Provides-Extra: {extra}")
                continue
            conditions = []
            if extra:
                conditions.append(f'extra == "{extra}"')
            if marker:
                conditions.append(f"({marker})")
            suffix = f"; {' and '.join(conditions)}" if conditions else ""
            lines.append(f"Requires-Dist: {line}{suffix}")
    return lines


class bdist_wheel(Command):
    description = "create a wheel distribution (minimal shim)"
    user_options = []

    def initialize_options(self):
        self.dist_dir = None
        self.bdist_dir = None

    def finalize_options(self):
        if self.dist_dir is None:
            self.dist_dir = "dist"

    def get_tag(self):
        return ("py3", "none", "any")

    def write_wheelfile(self, wheelfile_base, generator=None):
        if generator is None:
            generator = f"wheel-shim ({__version__})"
        tag = "-".join(self.get_tag())
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            "Root-Is-Purelib: true\n"
            f"Tag: {tag}\n"
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def egg2dist(self, egginfo_path, distinfo_path):
        """Convert an .egg-info directory into a .dist-info directory."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)

        pkg_info = os.path.join(egginfo_path, "PKG-INFO")
        metadata_lines: list[str] = []
        if os.path.exists(pkg_info):
            with open(pkg_info, encoding="utf-8") as f:
                metadata_lines = f.read().rstrip("\n").split("\n")
        else:  # pragma: no cover - egg_info always writes PKG-INFO
            metadata_lines = ["Metadata-Version: 2.1", "Name: unknown", "Version: 0"]

        requires = os.path.join(egginfo_path, "requires.txt")
        if os.path.exists(requires):
            # Insert dependency metadata before any body/description text.
            try:
                split = metadata_lines.index("")
            except ValueError:
                split = len(metadata_lines)
            extra_lines = _requires_to_requires_dist(requires)
            metadata_lines = (
                metadata_lines[:split] + extra_lines + metadata_lines[split:]
            )

        with open(
            os.path.join(distinfo_path, "METADATA"), "w", encoding="utf-8"
        ) as f:
            f.write("\n".join(metadata_lines) + "\n")

        entry_points = os.path.join(egginfo_path, "entry_points.txt")
        if os.path.exists(entry_points):
            shutil.copy(entry_points, os.path.join(distinfo_path, "entry_points.txt"))

    def run(self):  # pragma: no cover - editable installs never call run()
        raise NotImplementedError(
            "the wheel shim only supports editable installs; install the real "
            "'wheel' package to build distributions"
        )
