"""Flow-insensitive points-to and may-alias analysis.

This is the stand-in for LLVM's alias analysis in the paper's
implementation. It provides the two oracles the rest of the system
needs:

* ``may_alias(a, b)`` — can two address values denote overlapping
  memory? Used by ordering generation and by
* ``potential_writers(load)`` — "alias analysis is used to find all
  stores in the function that potentially wrote the value being read"
  (Listing 2, line 17), the memory-chasing step of the backwards slicer.

The abstraction: every pointer value maps to a set of abstract objects —
named globals (field-insensitive over arrays), individual ``alloca``
sites, and a conservative ``Unknown`` top element covering everything
that escapes the function (parameter pointers, values loaded from
shared memory, call results, integer constants used as addresses).
``Unknown`` may alias any global or *escaped* alloca but never a
provably-local one; this is exactly the precision/conservatism split
that makes the paper's Fig. 2 example work (``*p1`` with locally
assigned ``p1`` aliases {x, y} but not ``flag``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    AtomicAdd,
    AtomicXchg,
    BinOp,
    Call,
    Cmp,
    CmpXchg,
    Gep,
    Instruction,
    Load,
    Ret,
    Store,
)
from repro.ir.values import Constant, GlobalRef, Register, Value


class AbstractObject:
    """Base class for abstract memory objects."""

    __slots__ = ()


class GlobalObj(AbstractObject):
    """A named global variable (whole array, field-insensitive)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GlobalObj) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("g", self.name))

    def __repr__(self) -> str:
        return f"GlobalObj({self.name})"


class AllocaObj(AbstractObject):
    """One ``alloca`` site (identified by its instruction)."""

    __slots__ = ("inst",)

    def __init__(self, inst: Alloca) -> None:
        self.inst = inst

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AllocaObj) and other.inst is self.inst

    def __hash__(self) -> int:
        return hash(("a", id(self.inst)))

    def __repr__(self) -> str:
        return f"AllocaObj({self.inst.dest})"


class _Unknown(AbstractObject):
    __slots__ = ()

    def __repr__(self) -> str:
        return "Unknown"


UNKNOWN = _Unknown()

Pointees = frozenset


class PointsTo:
    """Flow-insensitive Andersen-style points-to for one function.

    Also computes the set of *escaped* allocas: locals whose address may
    leave the function (stored into shared memory, passed to a call,
    returned, or stored into another escaped local).
    """

    def __init__(self, func: Function) -> None:
        self.function = func
        # Register id -> set of abstract objects the register may point at.
        self._reg_pointees: dict[int, frozenset[AbstractObject]] = {}
        # Alloca contents: pointer values that may have been stored in it.
        self._contents: dict[AllocaObj, frozenset[AbstractObject]] = {}
        self.escaped_allocas: frozenset[AllocaObj] = frozenset()
        self._compute()

    # --- public API ------------------------------------------------------
    def pointees(self, value: Value) -> frozenset[AbstractObject]:
        """Abstract objects ``value`` may denote when used as an address."""
        if isinstance(value, GlobalRef):
            return frozenset([GlobalObj(value.name)])
        if isinstance(value, Constant):
            # Integer literals cannot denote valid addresses in this
            # language (addresses arise only from ``&x`` / allocas), so
            # a constant points at nothing — this is what lets a
            # null-initialized pointer slot stay precise.
            return frozenset()
        if isinstance(value, Register):
            return self._reg_pointees.get(id(value), frozenset([UNKNOWN]))
        raise TypeError(f"not a value: {value!r}")

    def may_alias(self, a: Value, b: Value) -> bool:
        """Can addresses ``a`` and ``b`` denote overlapping memory?"""
        sa = self.pointees(a)
        sb = self.pointees(b)
        if sa & sb - {UNKNOWN}:
            return True
        if UNKNOWN in sa and self._has_escaping_target(sb):
            return True
        if UNKNOWN in sb and self._has_escaping_target(sa):
            return True
        return False

    def _has_escaping_target(self, objs: Iterable[AbstractObject]) -> bool:
        """Does the set contain anything Unknown could alias?"""
        for o in objs:
            if isinstance(o, GlobalObj) or o is UNKNOWN:
                return True
            if isinstance(o, AllocaObj) and o in self.escaped_allocas:
                return True
        return False

    def potential_writers(self, inst: Instruction) -> list[Instruction]:
        """All stores/RMWs in the function that may write the location
        read by ``inst`` (Listing 2's ``potential_writers``)."""
        addr = inst.address_operand()
        if addr is None:
            raise ValueError(f"{inst!r} does not read memory")
        writers = []
        for other in self.function.instructions():
            if other.writes_memory():
                other_addr = other.address_operand()
                if other_addr is not None and self.may_alias(addr, other_addr):
                    writers.append(other)
        return writers

    def is_local_address(self, addr: Value) -> bool:
        """True if ``addr`` provably denotes only non-escaped allocas."""
        return all(
            isinstance(o, AllocaObj) and o not in self.escaped_allocas
            for o in self.pointees(addr)
        )

    # --- fixpoint computation ----------------------------------------------
    def _compute(self) -> None:
        func = self.function
        # Initialize: parameters are Unknown; every register starts empty
        # and is filled by its defining instruction's transfer function.
        for param in func.params:
            self._reg_pointees[id(param)] = frozenset([UNKNOWN])

        changed = True
        while changed:
            changed = False
            for inst in func.instructions():
                if inst.dest is None:
                    if isinstance(inst, Store):
                        changed |= self._flow_store(inst.addr, inst.value)
                    continue
                new = self._transfer(inst)
                old = self._reg_pointees.get(id(inst.dest), frozenset())
                if new != old:
                    self._reg_pointees[id(inst.dest)] = new | old
                    changed = True
            # RMWs also store their operand value.
            for inst in func.instructions():
                if isinstance(inst, CmpXchg):
                    changed |= self._flow_store(inst.addr, inst.new)
                elif isinstance(inst, (AtomicXchg, AtomicAdd)):
                    changed |= self._flow_store(inst.addr, inst.value)
        self._compute_escaped()

    def _transfer(self, inst: Instruction) -> frozenset[AbstractObject]:
        if isinstance(inst, Alloca):
            return frozenset([AllocaObj(inst)])
        if isinstance(inst, Load):
            return self._load_from(inst.addr)
        if isinstance(inst, (CmpXchg, AtomicXchg, AtomicAdd)):
            return self._load_from(inst.addr)
        if isinstance(inst, Gep):
            # Field-insensitive: the result points into the same objects.
            return self.pointees(inst.base)
        if isinstance(inst, BinOp):
            return self.pointees(inst.lhs) | self.pointees(inst.rhs)
        if isinstance(inst, Cmp):
            # Comparison results are booleans, never addresses.
            return frozenset([UNKNOWN])
        if isinstance(inst, Call):
            return frozenset([UNKNOWN])
        return frozenset([UNKNOWN])

    def _load_from(self, addr: Value) -> frozenset[AbstractObject]:
        result: set[AbstractObject] = set()
        for o in self.pointees(addr):
            if isinstance(o, AllocaObj):
                result |= self._contents.get(o, frozenset())
            else:
                # Loading through a global or unknown pointer: the value
                # may be anything another thread/function put there.
                result.add(UNKNOWN)
        if not result:
            # Loading from an alloca nothing was stored to yet.
            result.add(UNKNOWN)
        return frozenset(result)

    def _flow_store(self, addr: Value, value: Value) -> bool:
        """Record ``value``'s pointees in the contents of what ``addr``
        points at. Returns True if anything changed."""
        changed = False
        value_pointees = self.pointees(value)
        for o in self.pointees(addr):
            if isinstance(o, AllocaObj):
                old = self._contents.get(o, frozenset())
                new = old | value_pointees
                if new != old:
                    self._contents[o] = new
                    changed = True
        return changed

    def _compute_escaped(self) -> None:
        """Fixpoint: an alloca escapes if its address reaches shared
        memory, a call, a return, or an already-escaped alloca."""
        escaped: set[AllocaObj] = set()

        def targets_escape(addr: Value) -> bool:
            for o in self.pointees(addr):
                if isinstance(o, GlobalObj) or o is UNKNOWN:
                    return True
                if isinstance(o, AllocaObj) and o in escaped:
                    return True
            return False

        def allocas_in(value: Value) -> set[AllocaObj]:
            return {
                o for o in self.pointees(value) if isinstance(o, AllocaObj)
            }

        changed = True
        while changed:
            changed = False
            for inst in self.function.instructions():
                candidates: set[AllocaObj] = set()
                if isinstance(inst, Store) and targets_escape(inst.addr):
                    candidates = allocas_in(inst.value)
                elif isinstance(inst, CmpXchg) and targets_escape(inst.addr):
                    candidates = allocas_in(inst.new)
                elif isinstance(inst, (AtomicXchg, AtomicAdd)) and targets_escape(
                    inst.addr
                ):
                    candidates = allocas_in(inst.value)
                elif isinstance(inst, Call):
                    for arg in inst.args:
                        candidates |= allocas_in(arg)
                elif isinstance(inst, Ret) and inst.value is not None:
                    candidates = allocas_in(inst.value)
                new = candidates - escaped
                if new:
                    escaped |= new
                    changed = True
        self.escaped_allocas = frozenset(escaped)
