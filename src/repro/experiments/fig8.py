"""Fig. 8: ordering counts by type for Pensieve / Address+Control / Control."""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.core.machine_models import OrderKind
from repro.core.pipeline import PipelineVariant
from repro.experiments import expected
from repro.programs.registry import BenchProgram, all_programs
from repro.util.stats import geomean
from repro.util.text import format_table

VARIANTS = (
    PipelineVariant.PENSIEVE,
    PipelineVariant.ADDRESS_CONTROL,
    PipelineVariant.CONTROL,
)


@dataclass(frozen=True)
class Fig8Row:
    program: str
    # variant -> OrderKind -> count (after that variant's pruning)
    counts: dict[PipelineVariant, dict[OrderKind, int]]

    def total(self, variant: PipelineVariant) -> int:
        return sum(self.counts[variant].values())

    def surviving_fraction(self, variant: PipelineVariant) -> float:
        base = self.total(PipelineVariant.PENSIEVE)
        return self.total(variant) / max(1, base)


@dataclass
class Fig8Result:
    rows: list[Fig8Row]

    def geomean_surviving(self, variant: PipelineVariant) -> float:
        return geomean(
            [max(1e-6, r.surviving_fraction(variant)) for r in self.rows]
        )


def run_program(program: BenchProgram, ir=None, session=None) -> Fig8Row:
    session = session if session is not None else Session()
    ir = ir if ir is not None else program.compile()
    counts = {}
    for variant in VARIANTS:
        analysis = session.analysis(ir, variant)
        counts[variant] = analysis.ordering_counts(pruned=True)
    return Fig8Row(program=program.name, counts=counts)


def run(programs: dict[str, BenchProgram] | None = None) -> Fig8Result:
    programs = programs if programs is not None else all_programs()
    return Fig8Result([run_program(p) for p in programs.values()])


def render(result: Fig8Result | None = None) -> str:
    result = result if result is not None else run()
    header = ["program"]
    for variant in VARIANTS:
        tag = {"pensieve": "Pen", "address+control": "A+C", "control": "Ctl"}[
            variant.value
        ]
        header += [f"{tag} {k.value}" for k in OrderKind] + [f"{tag} total"]
    rows = []
    for r in result.rows:
        row: list[object] = [r.program]
        for variant in VARIANTS:
            row += [r.counts[variant][k] for k in OrderKind]
            row.append(r.total(variant))
        rows.append(row)
    table = format_table(
        header,
        rows,
        title="Fig. 8: orderings by type (Pensieve / Address+Control / Control)",
    )
    footer = (
        f"\nsurviving orderings geomean: "
        f"Control {result.geomean_surviving(PipelineVariant.CONTROL):.1%} "
        f"(paper {expected.FIG8_GEOMEAN_CONTROL:.0%}), "
        f"Address+Control "
        f"{result.geomean_surviving(PipelineVariant.ADDRESS_CONTROL):.1%} "
        f"(paper {expected.FIG8_GEOMEAN_ADDRESS_CONTROL:.0%})"
    )
    return table + footer
