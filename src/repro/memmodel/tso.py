"""x86-TSO operational model exploration.

Standard operational TSO: each thread owns a FIFO store buffer.

* stores enqueue into the buffer;
* loads forward from the newest matching buffer entry, else read memory;
* buffer entries drain to memory nondeterministically, in FIFO order;
* ``mfence`` and atomic RMWs (LOCK-prefixed on x86) execute only with
  an empty buffer — RMWs then act directly and atomically on memory;
* compiler directives have no hardware effect.

The explorer walks interleavings of thread steps and buffer flushes
through the shared DPOR core (:mod:`repro.memmodel.explore`): buffered
stores and forwarded loads are thread-local, so the classic TSO blowup
(every flush point x every remote step) collapses to the orderings
that conflict. Final outcomes (all threads done, all buffers drained)
are comparable with :class:`repro.memmodel.sc.SCExplorer` outcomes —
the reproduction's correctness criterion is exactly the paper's: a
fence placement is good if the TSO outcome set of the fenced program
equals the SC outcome set of the original for the data reads.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Program
from repro.ir.instructions import FenceKind
from repro.memmodel.explore import LOCAL_FP, CoreExplorer, Transition
from repro.memmodel.interpreter import ExecutionError, ThreadState
from repro.memmodel.sc import ExplorationResult, Outcome, make_outcome

Buffer = tuple[tuple[int, int], ...]  # FIFO of (addr, value); oldest first


class TSOExplorer(CoreExplorer):
    """DPOR DFS over the TSO state graph (threads x buffers x memory).

    State = (memory, threads, buffers)."""

    MODEL_KEY = "x86-tso"

    @staticmethod
    def _buffer_lookup(buffer: Buffer, addr: int) -> Optional[int]:
        """Newest buffered value for ``addr``, if any (store forwarding)."""
        for entry_addr, entry_value in reversed(buffer):
            if entry_addr == addr:
                return entry_value
        return None

    def initial_state(self) -> tuple:
        threads = tuple(self.executor.start_all())
        return (
            self.layout.initial_memory(),
            threads,
            tuple(() for _ in threads),
        )

    def threads_of(self, state: tuple) -> tuple[ThreadState, ...]:
        return state[1]

    def state_parts(self, state: tuple) -> tuple[tuple, tuple]:
        memory, _threads, buffers = state
        return tuple(sorted(memory.items())), buffers

    def buffered_addrs(self, state: tuple, tid: int) -> frozenset[int]:
        return frozenset(addr for addr, _value in state[2][tid])

    def outcome_of(self, state: tuple) -> Outcome:
        memory, threads, _buffers = state
        return make_outcome(self.layout, memory, threads, self.observe_globals)

    def check_final(self, state: tuple) -> None:
        if any(state[2]):  # pragma: no cover - flushes always enabled
            raise ExecutionError("deadlock with non-empty buffer")

    def transitions(self, state: tuple) -> list[Transition]:
        memory, threads, buffers = state
        out: list[Transition] = []

        # (a) buffer flush transitions (oldest entry drains first).
        for i, buffer in enumerate(buffers):
            if not buffer:
                continue
            (addr, value), rest = buffer[0], buffer[1:]
            new_memory = dict(memory)
            new_memory[addr] = value
            new_buffers = buffers[:i] + (rest,) + buffers[i + 1 :]
            out.append(
                Transition(
                    ("f", i),
                    i,
                    False,
                    self._addr_fp(addr, writes=True),
                    ((new_memory, threads, new_buffers),),
                )
            )

        # (b) thread step transitions.
        for i, ts in enumerate(threads):
            if ts.done:
                continue
            new_threads, clone, pending = self._advance(threads, i)
            if pending is None:
                out.append(
                    Transition(
                        ("t", i), i, True, LOCAL_FP, ((memory, new_threads, buffers),)
                    )
                )
                continue
            buffer = buffers[i]
            if pending.kind == "load":
                forwarded = self._buffer_lookup(buffer, pending.addr)
                if forwarded is not None:
                    self.executor.commit(clone, pending, forwarded)
                    # Still a shared-memory read for reduction purposes:
                    # whether it forwards depends on the own flush having
                    # drained, so treating it as invisible would let a
                    # rival flush slip between "own flush; load" unseen.
                    fp = self._addr_fp(pending.addr, reads=True)
                else:
                    self.executor.commit(
                        clone, pending, memory.get(pending.addr, 0)
                    )
                    fp = self._addr_fp(pending.addr, reads=True)
                succ = (memory, new_threads, buffers)
            elif pending.kind == "store":
                new_buffers = (
                    buffers[:i]
                    + (buffer + ((pending.addr, pending.value),),)
                    + buffers[i + 1 :]
                )
                self.executor.commit(clone, pending)
                fp = LOCAL_FP  # buffered: invisible until flushed
                succ = (memory, new_threads, new_buffers)
            elif pending.kind == "rmw":
                if buffer:
                    continue  # LOCK-prefixed: drains the buffer first
                new_memory = dict(memory)
                old = new_memory.get(pending.addr, 0)
                result, new = pending.rmw_result(old)
                if new is not None:
                    new_memory[pending.addr] = new
                self.executor.commit(clone, pending, result)
                fp = self._addr_fp(pending.addr, reads=True, writes=True)
                succ = (new_memory, new_threads, buffers)
            elif pending.kind == "fence":
                if pending.fence_kind is FenceKind.FULL and buffer:
                    continue  # mfence waits for the buffer to drain
                self.executor.commit(clone, pending)
                fp = LOCAL_FP
                succ = (memory, new_threads, buffers)
            else:  # pragma: no cover
                raise ExecutionError(f"unknown action {pending.kind}")
            out.append(Transition(("t", i), i, True, fp, (succ,)))
        return out


def tso_equals_sc_for_observations(
    program_unfenced: Program,
    program_fenced: Program,
    max_states: int = 1_000_000,
) -> tuple[bool, set, set]:
    """Compare observation sets: SC of the original program vs TSO of
    the fenced program (the paper's correctness criterion for data
    reads). Returns (equal, sc_only, tso_only)."""
    from repro.memmodel.sc import SCExplorer

    sc = SCExplorer(program_unfenced, max_states=max_states).explore()
    tso = TSOExplorer(program_fenced, max_states=max_states).explore()
    if not (sc.complete and tso.complete):
        raise ExecutionError("state-space bound hit; raise max_states")
    sc_obs = sc.observation_sets()
    tso_obs = tso.observation_sets()
    return sc_obs == tso_obs, sc_obs - tso_obs, tso_obs - sc_obs


__all__ = [
    "Buffer",
    "ExplorationResult",
    "TSOExplorer",
    "tso_equals_sc_for_observations",
]
