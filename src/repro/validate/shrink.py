"""Greedy counterexample minimization for oracle violations.

Works on mini-C source *lines* (the generator emits one statement per
line), trying reductions largest-first — drop a function together with
its thread declarations, drop a thread, drop a brace-balanced block,
drop a single statement or global declaration, shrink a loop bound —
and keeping any edit after which the program still compiles, is still
well-synchronized, and still exhibits the violation (the variant's
placement fails to restore SC while the every-delay placement
succeeds). Edits that break the parse or the property are simply
rejected by re-checking, so the reducer needs no real understanding of
the language beyond brace matching.

The result renders as a paste-ready :class:`~repro.memmodel.litmus.LitmusTest`
snippet via :func:`to_litmus_snippet`, which is how a fuzzer find gets
promoted into the permanent regression corpus.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.frontend import LexError, LoweringError, ParseError, compile_source
from repro.ir.verifier import VerificationError
from repro.memmodel.interpreter import ExecutionError
from repro.validate.oracle import run_oracle

#: Anything a structurally-broken candidate can raise on recompile or
#: re-exploration; such candidates are simply rejected.
_COMPILE_ERRORS = (LexError, ParseError, LoweringError, VerificationError,
                   ExecutionError, LookupError, ValueError)


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized counterexample and how much work finding it took."""

    source: str
    checks: int
    passes: int

    @property
    def lines(self) -> int:
        return sum(1 for line in self.source.splitlines() if line.strip())


def _spans(lines: list[str]) -> dict[str, list[tuple[int, int]]]:
    """Brace-matched line spans: whole functions and inner blocks.

    Lines that open and close on the same line (``while (f == 0) { }``
    and ``} else {`` continuations) deliberately match nothing here —
    the former are single-line candidates, the latter keep an
    if/else chain one span.
    """
    spans: dict[str, list[tuple[int, int]]] = {"fn": [], "block": []}
    stack: list[tuple[int, str]] = []
    for i, raw in enumerate(lines):
        opens, closes = raw.count("{"), raw.count("}")
        if opens > closes:
            kind = "fn" if raw.strip().startswith("fn ") else "block"
            stack.append((i, kind))
        elif closes > opens and stack:
            start, kind = stack.pop()
            spans[kind].append((start, i))
    return spans


def _without(lines: list[str], drop: set[int]) -> list[str]:
    return [line for i, line in enumerate(lines) if i not in drop]


def _candidates(lines: list[str]) -> Iterator[list[str]]:
    """Reduction candidates, largest-first; each is a full line list."""
    spans = _spans(lines)

    # 1. Whole functions plus the thread declarations that spawn them.
    for start, end in spans["fn"]:
        match = re.match(r"fn\s+(\w+)", lines[start].strip())
        if not match:
            continue
        drop = set(range(start, end + 1))
        drop |= {
            i
            for i, line in enumerate(lines)
            if line.strip().startswith("thread")
            and re.search(rf"\b{match.group(1)}\b", line)
        }
        yield _without(lines, drop)

    # 2. Individual thread declarations.
    for i, line in enumerate(lines):
        if line.strip().startswith("thread"):
            yield _without(lines, {i})

    # 3. Inner blocks (if/while bodies), larger spans first.
    for start, end in sorted(
        spans["block"], key=lambda span: span[0] - span[1]
    ):
        yield _without(lines, set(range(start, end + 1)))

    # 4. Single-line constructs and statements.
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith(("fn ", "thread")):
            continue
        is_one_line_block = "{" in line and line.count("{") == line.count("}")
        is_statement = stripped.endswith(";")
        if is_one_line_block or is_statement:
            yield _without(lines, {i})

    # 5. Loop-bound shrinking: try 1, then half.
    for i, line in enumerate(lines):
        match = re.search(r"<\s*(\d+)\s*\)", line)
        if not match:
            continue
        bound = int(match.group(1))
        for smaller in (1, bound // 2):
            if 0 < smaller < bound:
                edited = list(lines)
                edited[i] = (
                    line[: match.start()]
                    + f"< {smaller})"
                    + line[match.end():]
                )
                yield edited


def _cleanup(lines: list[str]) -> str:
    out: list[str] = []
    for line in lines:
        if line.strip() or (out and out[-1].strip()):
            out.append(line.rstrip())
    while out and not out[-1].strip():
        out.pop()
    return "\n".join(out) + "\n"


def shrink_counterexample(
    source: str,
    name: str,
    variant: str,
    model: str,
    sync_globals: frozenset[str],
    max_states: int = 1_000_000,
    drf_max_traces: int = 400,
    max_checks: int = 400,
) -> ShrinkResult:
    """Minimize a confirmed violation; returns the smallest source kept.

    The predicate re-runs the full oracle for ``variant`` on every
    candidate, so the shrunk program is guaranteed to still be a
    counterexample under the same contract that flagged the original.
    If the original unexpectedly fails the predicate (e.g. tighter
    exploration limits here), it is returned unshrunk.
    """
    checks = 0
    verdicts: dict[str, bool] = {}  # same candidate text -> same verdict

    def still_violates(candidate: str) -> bool:
        nonlocal checks
        cached = verdicts.get(candidate)
        if cached is not None:
            return cached
        if checks >= max_checks:
            return False
        checks += 1
        try:
            report = run_oracle(
                candidate,
                name,
                variants=(variant,),
                model=model,
                sync_globals=sync_globals,
                max_states=max_states,
                drf_max_traces=drf_max_traces,
                explore_unfenced=False,
            )
            verdict = report.complete and bool(report.violations)
        except _COMPILE_ERRORS:
            verdict = False
        verdicts[candidate] = verdict
        return verdict

    lines = source.splitlines()
    if not still_violates(source):
        return ShrinkResult(source=_cleanup(lines), checks=checks, passes=0)

    passes = 0
    progressed = True
    while progressed and checks < max_checks:
        progressed = False
        passes += 1
        for candidate in _candidates(lines):
            if len(candidate) >= len(lines) and candidate == lines:
                continue
            if still_violates("\n".join(candidate)):
                lines = candidate
                progressed = True
                break
    return ShrinkResult(source=_cleanup(lines), checks=checks, passes=passes)


def to_litmus_snippet(
    name: str,
    source: str,
    sync_globals: frozenset[str],
    description: str = "",
    tso_breaks_unfenced: bool = True,
    notes: str = "",
) -> str:
    """Render a shrunk program as a paste-ready LitmusTest definition.

    Only globals still present in the (shrunk) program are kept in the
    marking, so the snippet is self-consistent.
    """
    try:
        remaining = set(compile_source(source, name).globals)
    except _COMPILE_ERRORS:  # pragma: no cover - shrinker output compiles
        remaining = set(sync_globals)
    sync = ", ".join(f'"{g}"' for g in sorted(sync_globals & remaining))
    ident = re.sub(r"[^A-Za-z0-9]+", "_", name).upper().strip("_")
    return (
        f"{ident} = LitmusTest(\n"
        f'    name="{name}",\n'
        f'    description="{description}",\n'
        f'    source="""\n{source.strip()}\n""",\n'
        f"    sync_globals=frozenset({{{sync}}}),\n"
        f"    well_synchronized=True,\n"
        f"    tso_breaks_unfenced={tso_breaks_unfenced},\n"
        f'    notes="{notes}",\n'
        f")\n"
    )
