"""The deprecation-shim grep gate runs clean as a tier-1 test.

The PR-3 compatibility shims survive only for external callers;
``tools/check_shims.py`` greps the tree so internal usage cannot creep
back in. This pins both directions: the tree is clean today, and the
gate actually fires on a violation.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_shims", ROOT / "tools" / "check_shims.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_internal_shim_callers():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_shims.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    assert "shim gate clean" in result.stdout


def test_gate_catches_each_banned_pattern(tmp_path):
    gate = _load_gate()
    offending = [
        "x = VARIANTS_BY_VALUE['control']",
        "table = WEAK_EXPLORERS",
        "repro.analyze_program(program)",
        "repro.place_fences(program)",
        "from repro import analyze_program",
    ]
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "offender.py").write_text("\n".join(offending) + "\n")
    original_root = gate.ROOT
    try:
        gate.ROOT = tmp_path
        found = gate.violations()
    finally:
        gate.ROOT = original_root
    assert len(found) == len(offending)
    assert {lineno for _, lineno, _, _ in found} == set(
        range(1, len(offending) + 1)
    )


def test_allowlist_covers_only_existing_files():
    gate = _load_gate()
    for rel in gate.ALLOWED:
        assert (ROOT / rel).exists(), f"stale allowlist entry: {rel}"
