"""Unit tests for acquire-signature detection (Listings 1 and 3)."""

from repro.core.signatures import (
    Variant,
    detect_acquires,
    signature_breakdown,
)
from repro.frontend import compile_source


def _func(src: str, fn: str):
    return compile_source(src, "t").functions[fn]


MP_CONSUMER = """
global int flag;
global int data;

fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}
"""


def test_mp_flag_read_is_control_acquire():
    func = _func(MP_CONSUMER, "consumer")
    result = detect_acquires(func, Variant.CONTROL)
    assert len(result.sync_reads) == 1
    (acq,) = list(result.sync_reads)
    assert str(acq.addr) == "@flag"


def test_mp_data_read_is_not_acquire():
    func = _func(MP_CONSUMER, "consumer")
    result = detect_acquires(func, Variant.ADDRESS_CONTROL)
    addrs = {str(i.addr) for i in result.sync_reads}
    assert "@data" not in addrs


FIG5_READER = """
global int x;
global int z;
global int y = &z;

fn reader(tid) {
  local r = 0;
  local r1 = 0;
  r = y;
  r1 = *r;
  observe("r1", r1);
}
"""


def test_fig5_pointer_read_is_pure_address_acquire():
    func = _func(FIG5_READER, "reader")
    control = detect_acquires(func, Variant.CONTROL)
    both = detect_acquires(func, Variant.ADDRESS_CONTROL)
    assert len(control.sync_reads) == 0  # no branches at all
    y_reads = [i for i in both.sync_reads if str(getattr(i, "addr", "")) == "@y"]
    assert len(y_reads) == 1  # the address signature catches it


def test_fig5_breakdown_reports_pure_address():
    bd = signature_breakdown(_func(FIG5_READER, "reader"))
    assert bd.has_pure_address
    assert not bd.has_control


DEKKER_LEFT = """
global int x;
global int y;
global int z;

fn left(tid) {
  local r = 0;
  x = 1;
  r = y;
  if (r == 0) {
    z = z + 1;
  }
}
"""


def test_dekker_read_is_control_acquire():
    result = detect_acquires(_func(DEKKER_LEFT, "left"), Variant.CONTROL)
    addrs = {str(i.addr) for i in result.sync_reads}
    assert "@y" in addrs


def test_control_subset_of_address_control():
    for src, fn in ((MP_CONSUMER, "consumer"), (FIG5_READER, "reader"), (DEKKER_LEFT, "left")):
        func = _func(src, fn)
        c = detect_acquires(func, Variant.CONTROL).sync_reads
        ac = detect_acquires(func, Variant.ADDRESS_CONTROL).sync_reads
        assert set(c).issubset(set(ac))


def test_acquires_subset_of_escaping_reads():
    from repro.analysis.escape import EscapeInfo

    func = _func(MP_CONSUMER, "consumer")
    esc = EscapeInfo(func)
    ac = detect_acquires(func, Variant.ADDRESS_CONTROL).sync_reads
    assert set(ac).issubset(set(esc.escaping_reads))


def test_local_branch_feeds_no_acquire():
    src = "fn f() { local i = 0; while (i < 10) { i = i + 1; } }"
    result = detect_acquires(_func(src, "f"), Variant.ADDRESS_CONTROL)
    assert len(result.sync_reads) == 0


def test_breakdown_pure_address_definition():
    bd = signature_breakdown(_func(FIG5_READER, "reader"))
    assert set(bd.pure_address) == set(bd.address) - set(bd.control)
    assert set(bd.all_acquires) == set(bd.address) | set(bd.control)


def test_gep_offset_sliced_not_base():
    # base pointer is a bare global array; only the offset chain counts
    src = """
    global tab[8]; global idx; global other;
    fn f() {
      local r = tab[idx];
      local s = other;
    }
    """
    func = _func(src, "f")
    result = detect_acquires(func, Variant.ADDRESS_CONTROL)
    addrs = {str(getattr(i, "addr", "")) for i in result.sync_reads}
    assert "@idx" in addrs
    assert "@other" not in addrs


def test_address_acquire_through_arith():
    # idx participates via arithmetic in the offset computation
    src = "global tab[8]; global idx; fn f() { local r = tab[(idx * 2 + 1) % 8]; }"
    result = detect_acquires(_func(src, "f"), Variant.ADDRESS_CONTROL)
    assert any(str(getattr(i, "addr", "")) == "@idx" for i in result.sync_reads)


def test_interprocedural_split_not_detected():
    # The paper's documented limitation: read and branch in different
    # functions (Section 4's simplifying assumption).
    src = """
    global flag;
    fn get() { return flag; }
    fn f() {
      local r = get();
      while (r == 0) { r = get(); }
    }
    """
    prog = compile_source(src, "t")
    f_acq = detect_acquires(prog.functions["f"], Variant.ADDRESS_CONTROL).sync_reads
    get_acq = detect_acquires(prog.functions["get"], Variant.ADDRESS_CONTROL).sync_reads
    # the flag load lives in get(), the branch in f(): neither finds it
    assert not any(str(getattr(i, "addr", "")) == "@flag" for i in f_acq)
    assert not any(str(getattr(i, "addr", "")) == "@flag" for i in get_acq)
