"""Quickstart: the public API on a legacy producer/consumer program.

This is the source of truth for the README's "Public API" section.
One :class:`repro.api.Session` fronts the whole pipeline; requests and
reports are schema-versioned dataclasses that round-trip through JSON
byte-identically, so analysis results are durable wire artifacts.

The walkthrough:

1. analyze a well-synchronized (legacy DRF) program and compare the
   paper's Control detection against the Pensieve baseline;
2. serialize the report, read it back, and verify the exact round trip;
3. model-check that the Control placement restores SC on x86-TSO.

Run:  python examples/quickstart.py
"""

from repro.api import (
    AnalyzeReport,
    AnalyzeRequest,
    CheckRequest,
    ProgramSpec,
    Session,
)

SOURCE = """
global int flag;
global int payload[3];

fn producer(tid) {
  payload[0] = 10;
  payload[1] = 20;
  payload[2] = 30;
  flag = 1;
}

fn consumer(tid) {
  local total = 0;
  while (flag == 0) { }
  total = payload[0] + payload[1] + payload[2];
  observe("total", total);
}

thread producer(0);
thread consumer(1);
"""


def main() -> None:
    session = Session()
    spec = ProgramSpec.inline(SOURCE, name="quickstart")

    # 1. Pensieve fences every escaping read; Control detects the one
    #    synchronization read (the flag spin) and prunes the rest.
    for variant in ("pensieve", "control"):
        report = session.analyze(AnalyzeRequest(program=spec, variant=variant))
        print(
            f"{variant:12s}: {report.sync_reads}/{report.escaping_reads} "
            f"acquires, {report.pruned_orderings} orderings kept, "
            f"{report.full_fences} full fences, "
            f"{report.compiler_fences} compiler directives"
        )

    # 2. Reports are versioned wire artifacts: JSON out, JSON in,
    #    byte-identical back out.
    report = session.analyze(
        AnalyzeRequest(program=spec, variant="control", annotations=True)
    )
    wire = report.to_json()
    restored = AnalyzeReport.from_json(wire)
    assert restored.to_json() == wire
    print("\nreport round-trips byte-identically: OK")
    print(report.render())

    # 3. Model-check: with Control's fences, x86-TSO shows exactly the
    #    SC behaviours of the original program.
    check = session.check(CheckRequest(program=spec, model="x86-tso"))
    print()
    print(check.render())
    control = next(v for v in check.variants if v.variant == "control")
    assert control.restored_sc
    print("\nControl placement preserves SC behaviour: OK")


if __name__ == "__main__":
    main()
