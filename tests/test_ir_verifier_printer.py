"""Unit tests for the IR verifier and printer."""

import pytest

from repro.ir import (
    Constant,
    Function,
    GlobalRef,
    GlobalVar,
    IRBuilder,
    Load,
    Program,
    Register,
    Ret,
    Store,
    VerificationError,
    format_function,
    format_instruction,
    format_program,
    verify_function,
    verify_program,
)


def _minimal_program():
    p = Program("p")
    p.add_global(GlobalVar("x"))
    b = IRBuilder("main", ["tid"])
    b.new_block("entry")
    b.store(GlobalRef("x"), Constant(1))
    p.add_function(b.build())
    p.add_thread("main", [0])
    p.finalize()
    return p


def test_verify_ok():
    verify_program(_minimal_program())


def test_verify_empty_function():
    with pytest.raises(VerificationError):
        verify_function(Function("empty"))


def test_verify_unterminated_block():
    f = Function("f")
    blk = f.add_block("entry")
    blk.append(Store(GlobalRef("x"), Constant(1)))
    with pytest.raises(VerificationError, match="missing terminator"):
        verify_function(f)


def test_verify_branch_to_unknown_label():
    b = IRBuilder("f")
    b.new_block("entry")
    b.jump("missing")
    f = b.function.finalize()
    with pytest.raises(VerificationError, match="unknown label"):
        verify_function(f)


def test_verify_undefined_register_use():
    f = Function("f")
    blk = f.add_block("entry")
    ghost = Register("ghost")
    blk.append(Store(GlobalRef("x"), ghost))
    blk.append(Ret())
    with pytest.raises(VerificationError, match="undefined register"):
        verify_function(f)


def test_verify_unknown_callee():
    p = _minimal_program()
    b = IRBuilder("caller")
    b.new_block("entry")
    b.call("nonexistent", [])
    p.functions["caller"] = b.build()
    with pytest.raises(VerificationError, match="unknown function"):
        verify_program(p)


def test_verify_unknown_global():
    p = Program("p")
    b = IRBuilder("f")
    b.new_block("entry")
    b.store(GlobalRef("missing"), Constant(1))
    p.add_function(b.build())
    with pytest.raises(VerificationError, match="unknown global"):
        verify_program(p)


def test_verify_thread_entry_checks():
    p = _minimal_program()
    p.add_thread("nope", [])
    with pytest.raises(VerificationError, match="not a function"):
        verify_program(p)


def test_verify_thread_arity():
    p = _minimal_program()
    p.add_thread("main", [1, 2])  # main takes one param
    with pytest.raises(VerificationError, match="args for"):
        verify_program(p)


def test_format_instruction_shapes():
    r = Register("r")
    assert format_instruction(Load(r, GlobalRef("x"))) == "%r = load @x"
    assert format_instruction(Store(GlobalRef("x"), Constant(2))) == "store @x, 2"


def test_format_function_contains_blocks_and_params():
    p = _minimal_program()
    text = format_function(p.functions["main"])
    assert "func @main(%tid):" in text
    assert "entry:" in text
    assert "store @x, 1" in text


def test_format_program_contains_globals_and_threads():
    text = format_program(_minimal_program())
    assert "global @x = 0" in text
    assert "thread @main(0)" in text


def test_format_roundtrip_every_opcode(mp_program):
    # Smoke: every instruction in a real program formats without error.
    for func in mp_program.functions.values():
        for inst in func.instructions():
            assert isinstance(format_instruction(inst), str)
