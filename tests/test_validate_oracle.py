"""Tests for the differential fence-validation oracle.

Includes the corpus property test: for every litmus entry the oracle's
unfenced verdict must match the corpus's recorded
``tso_breaks_unfenced`` / ``well_synchronized`` ground truth, trusted
variants must never violate where the soundness contract applies, and
the deliberately-null detector must violate exactly where the corpus
says fences are needed.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.machine_models import MODELS
from repro.frontend import compile_source
from repro.memmodel.litmus import LITMUS_TESTS
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer
from repro.validate.generator import SHAPES, generate_program
from repro.validate.oracle import (
    DETECTION_VARIANTS,
    TRUSTED_VARIANTS,
    place_detected_fences,
    place_every_delay,
    run_oracle,
)

ALL = tuple(DETECTION_VARIANTS)


def _oracle_for(test, variants=ALL, model="x86-tso"):
    return run_oracle(
        test.source,
        test.name,
        variants=variants,
        model=model,
        sync_globals=test.sync_globals,
    )


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_corpus_verdicts_match_recorded_ground_truth(name):
    test = LITMUS_TESTS[name]
    report = _oracle_for(test)
    assert report.complete, report.skipped
    # The unfenced differential verdict is the corpus's recorded flag.
    assert report.weak_breaks_unfenced == test.tso_breaks_unfenced
    # The DRF check agrees with the corpus's intended-marking record.
    assert report.well_synchronized == test.well_synchronized
    # The every-delay upper bound restores SC on every corpus entry.
    assert report.full_restores_sc


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_corpus_trusted_variants_never_violate(name):
    report = _oracle_for(LITMUS_TESTS[name], variants=TRUSTED_VARIANTS)
    assert report.violations == ()


def test_corpus_null_detector_violates_exactly_on_dekker():
    """vanilla drops every w->r fence; of the well-synchronized corpus
    entries only the dekker-class ones need it, so the oracle must fire
    there and only there (racy entries are outside the contract)."""
    flagged = set()
    for name, test in LITMUS_TESTS.items():
        report = _oracle_for(test, variants=("vanilla",))
        if report.violations:
            flagged.add(name)
        if not test.well_synchronized:
            assert not report.contract_applies
    assert flagged == {"dekker", "dekker-scoreboard"}


def test_racy_programs_are_outside_the_contract():
    report = _oracle_for(LITMUS_TESTS["sb"], variants=ALL)
    assert not report.contract_applies
    assert report.violations == ()
    assert report.weak_breaks_unfenced  # still reported for information


@pytest.mark.parametrize("shape", SHAPES)
def test_generated_ground_truth_matches_oracle(shape):
    generated = generate_program(0, shape)
    report = run_oracle(
        generated.source,
        generated.name,
        variants=ALL,
        sync_globals=generated.sync_globals,
    )
    assert report.complete, report.skipped
    assert report.well_synchronized
    assert report.full_restores_sc
    if generated.expect_tso_break is not None:
        assert report.weak_breaks_unfenced == generated.expect_tso_break
    assert {v.variant for v in report.violations} == set(
        generated.expected_unsound_tso
    )


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shape=st.sampled_from(("handoff", "publish", "dekker")),
)
def test_trusted_variants_sound_on_any_generated_program(seed, shape):
    """The tentpole property: wherever the contract applies, detected
    placements from the trusted variants restore SC."""
    generated = generate_program(seed, shape)
    report = run_oracle(
        generated.source,
        generated.name,
        variants=TRUSTED_VARIANTS,
        sync_globals=generated.sync_globals,
    )
    assert report.complete, report.skipped
    assert report.well_synchronized
    assert report.contract_applies
    assert report.violations == ()
    for verdict in report.verdicts:
        assert verdict.restores_sc
        assert verdict.fences_saved >= 0


def test_every_delay_placement_collapses_tso_to_sc_even_when_racy():
    test = LITMUS_TESTS["sb"]
    fenced = compile_source(test.source, test.name)
    full, compiler = place_every_delay(fenced)
    assert full > 0 and compiler == 0
    sc = SCExplorer(compile_source(test.source, test.name)).explore()
    tso = TSOExplorer(fenced).explore()
    assert tso.observation_sets() == sc.observation_sets()


def test_vanilla_places_no_more_full_fences_than_pensieve():
    test = LITMUS_TESTS["dekker"]
    model = MODELS["x86-tso"]
    vanilla = compile_source(test.source, test.name)
    pensieve = compile_source(test.source, test.name)
    vanilla_full, _ = place_detected_fences(vanilla, "vanilla", model)
    pensieve_full, _ = place_detected_fences(pensieve, "pensieve", model)
    assert vanilla_full <= pensieve_full


def test_unknown_variant_and_model_rejected():
    test = LITMUS_TESTS["mp"]
    with pytest.raises(KeyError, match="unknown variant"):
        place_detected_fences(
            compile_source(test.source, "mp"), "bogus", MODELS["x86-tso"]
        )
    with pytest.raises(KeyError, match="no weak-memory explorer"):
        run_oracle(test.source, "mp", model="rmo")


def test_skip_on_state_explosion_is_reported():
    test = LITMUS_TESTS["iriw"]
    report = run_oracle(
        test.source, "iriw", sync_globals=test.sync_globals, max_states=10
    )
    assert not report.complete
    assert report.skipped is not None
    assert report.verdicts == ()
    assert not report.contract_applies


def test_tso_breaks_unfenced_helper_matches_corpus():
    from repro.validate.oracle import tso_breaks_unfenced

    for name in ("mp", "dekker", "sb", "lb"):
        test = LITMUS_TESTS[name]
        assert (
            tso_breaks_unfenced(test.source, name) == test.tso_breaks_unfenced
        ), name
    # Blown state bounds return None rather than a wrong verdict.
    assert tso_breaks_unfenced(LITMUS_TESTS["iriw"].source, "iriw", 10) is None
