"""Unit tests for statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import geomean, mean, normalize, percentile


def test_geomean_basic():
    assert geomean([2, 8]) == pytest.approx(4.0)


def test_geomean_single():
    assert geomean([7.0]) == pytest.approx(7.0)


def test_geomean_empty_raises():
    with pytest.raises(ValueError):
        geomean([])


def test_geomean_nonpositive_raises():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([-1.0])


def test_mean():
    assert mean([1, 2, 3]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        mean([])


def test_normalize():
    result = normalize({"a": 4.0, "b": 9.0}, {"a": 2.0, "b": 3.0})
    assert result == {"a": 2.0, "b": 3.0}


def test_normalize_missing_baseline_key():
    with pytest.raises(KeyError):
        normalize({"a": 1.0}, {})


def test_percentile_endpoints():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)


def test_percentile_bounds():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([], 50)


@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=50))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)


@given(
    st.lists(st.floats(min_value=0.001, max_value=1e3), min_size=1, max_size=20),
    st.floats(min_value=0.01, max_value=100.0),
)
def test_geomean_scales_linearly(values, k):
    scaled = geomean([v * k for v in values])
    assert scaled == pytest.approx(geomean(values) * k, rel=1e-6)
