"""Deprecation shims keeping the pre-facade entry points alive.

Each shim warns once per process (see :mod:`repro.util.deprecation`)
and delegates to exactly the code the facade runs, so results are
identical to the ``repro.api.Session`` path by construction. New code
should use the facade; these exist so scripts written against the
pre-``repro.api`` surface keep working.
"""

from __future__ import annotations

from repro.util.deprecation import warn_once


def analyze_program(program, variant=None, model=None, context=None):
    """Deprecated alias for the facade's analysis path."""
    warn_once(
        "repro.analyze_program",
        "repro.analyze_program is deprecated; use "
        "repro.api.Session().analysis(program, variant, model) instead",
    )
    from repro.core.machine_models import X86_TSO
    from repro.core.pipeline import PipelineVariant
    from repro.core.pipeline import analyze_program as _impl

    return _impl(
        program,
        variant if variant is not None else PipelineVariant.CONTROL,
        model if model is not None else X86_TSO,
        context=context,
    )


def place_fences(program, variant=None, model=None, context=None):
    """Deprecated alias for the facade's placement path."""
    warn_once(
        "repro.place_fences",
        "repro.place_fences is deprecated; use "
        "repro.api.Session().place(program, variant, model) instead",
    )
    from repro.core.machine_models import X86_TSO
    from repro.core.pipeline import PipelineVariant
    from repro.core.pipeline import place_fences as _impl

    return _impl(
        program,
        variant if variant is not None else PipelineVariant.CONTROL,
        model if model is not None else X86_TSO,
        context=context,
    )


def variants_by_value() -> dict:
    """Deprecated ``repro.core.pipeline.VARIANTS_BY_VALUE`` shim."""
    warn_once(
        "repro.core.pipeline.VARIANTS_BY_VALUE",
        "VARIANTS_BY_VALUE is deprecated; use "
        "repro.registry.get_variant / pipeline_variant_keys instead",
    )
    from repro.core.pipeline import PipelineVariant

    return {v.value: v for v in PipelineVariant}


def weak_explorers() -> dict:
    """Deprecated ``repro.validate.oracle.WEAK_EXPLORERS`` shim."""
    warn_once(
        "repro.validate.oracle.WEAK_EXPLORERS",
        "WEAK_EXPLORERS is deprecated; use "
        "repro.registry.weak_explorer_for / weak_model_keys instead",
    )
    from repro.registry.models import weak_explorer_for, weak_model_keys

    return {key: weak_explorer_for(key)[0] for key in weak_model_keys()}
