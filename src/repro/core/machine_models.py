"""Hardware memory-model descriptions.

A model records which program-order ordering kinds the hardware
enforces by itself. Orderings the hardware enforces still "have to be
preserved during the compilation process" (paper Section 2.1), so they
receive zero-cost compiler directives; the rest need full fences.

The paper evaluates on x86-TSO, where only ``w -> r`` needs a full
fence; SC, PSO, and RMO are provided for the ablation benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OrderKind(enum.Enum):
    """Program-order ordering types between two memory accesses."""

    RR = "r->r"
    RW = "r->w"
    WR = "w->r"
    WW = "w->w"

    @staticmethod
    def of(src_is_write: bool, dst_is_write: bool) -> "OrderKind":
        if src_is_write:
            return OrderKind.WW if dst_is_write else OrderKind.WR
        return OrderKind.RW if dst_is_write else OrderKind.RR


@dataclass(frozen=True)
class MemoryModel:
    """Which ordering kinds hardware enforces, plus RMW semantics."""

    name: str
    enforced: frozenset[OrderKind]
    # x86 atomic read-modify-writes are LOCK-prefixed and act as full
    # fences; weaker models may not give RMWs fence semantics.
    rmw_is_full_fence: bool = True

    def needs_full_fence(self, kind: OrderKind) -> bool:
        """Does this ordering kind require a hardware fence?"""
        return kind not in self.enforced

    def needs_any_full_fence(self, kinds: "frozenset[OrderKind] | set[OrderKind]") -> bool:
        return any(self.needs_full_fence(k) for k in kinds)


SC = MemoryModel(
    name="sc",
    enforced=frozenset(OrderKind),
    rmw_is_full_fence=True,
)

# x86-TSO: store buffers allow w->r reordering only.
X86_TSO = MemoryModel(
    name="x86-tso",
    enforced=frozenset({OrderKind.RR, OrderKind.RW, OrderKind.WW}),
    rmw_is_full_fence=True,
)

# PSO additionally relaxes w->w (SPARC PSO).
PSO = MemoryModel(
    name="pso",
    enforced=frozenset({OrderKind.RR, OrderKind.RW}),
    rmw_is_full_fence=True,
)

# RMO/weak: nothing enforced, every surviving ordering needs a fence.
RMO = MemoryModel(
    name="rmo",
    enforced=frozenset(),
    rmw_is_full_fence=False,
)

# ARMv7-style relaxed: all four program-order kinds are reorderable and
# exclusive-access RMWs carry no implicit barrier (DMBs do the work).
ARM = MemoryModel(
    name="arm",
    enforced=frozenset(),
    rmw_is_full_fence=False,
)

# POWER: equally relaxed in program order; larger/flavored fence ISA
# (sync vs lwsync) — the flavor catalog lives in :mod:`repro.arch`.
POWER = MemoryModel(
    name="power",
    enforced=frozenset(),
    rmw_is_full_fence=False,
)

MODELS: dict[str, MemoryModel] = {
    m.name: m for m in (SC, X86_TSO, PSO, RMO, ARM, POWER)
}
