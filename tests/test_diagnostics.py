"""Tests for the structured-diagnostics framework (repro.diagnostics).

Finding construction/ordering, the lint-pass registry, each shipped
fence pass (FENCE101/102/103) on minimal shapes, and run_lint's
severity gate.
"""

import pytest

from repro.core.machine_models import PSO, X86_TSO
from repro.diagnostics import (
    LINT_PASSES,
    Finding,
    FindingCounts,
    SourceSpan,
    run_lint,
    severity_rank,
    sort_findings,
)
from repro.engine.context import AnalysisContext
from repro.frontend import compile_source
from repro.arch import get_backend

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SB = """
global int x;
global int y;

fn p1(tid) { local r1 = 0; x = 1; r1 = y; observe("r1", r1); }
fn p2(tid) { local r2 = 0; y = 1; r2 = x; observe("r2", r2); }

thread p1(0);
thread p2(1);
"""


def _lint(source, name="test", manual_fences=False, **kwargs):
    program = compile_source(
        source, name=name, include_manual_fences=manual_fences
    )
    return run_lint(program, AnalysisContext(program), **kwargs)


# --- findings ----------------------------------------------------------------


def test_severity_rank_orders_and_rejects():
    assert severity_rank("note") < severity_rank("warning") < severity_rank(
        "error"
    )
    with pytest.raises(ValueError, match="unknown severity"):
        severity_rank("fatal")


def test_finding_rejects_bad_severity():
    with pytest.raises(ValueError):
        Finding(code="RACE001", severity="catastrophic", message="m")


def test_sort_findings_most_severe_first():
    note = Finding(code="FENCE101", severity="note", message="n")
    warn = Finding(code="RACE001", severity="warning", message="w")
    err = Finding(code="RACE002", severity="error", message="e")
    ordered = sort_findings([note, warn, err])
    assert [f.severity for f in ordered] == ["error", "warning", "note"]


def test_finding_counts_at_least():
    counts = FindingCounts.of(
        [
            Finding(code="A1", severity="note", message="n"),
            Finding(code="A2", severity="warning", message="w"),
        ]
    )
    assert counts.total == 2
    assert counts.at_least("note") == 2
    assert counts.at_least("warning") == 1
    assert counts.at_least("error") == 0


def test_finding_render_includes_span_and_verdict():
    finding = Finding(
        code="RACE001",
        severity="error",
        message="races",
        spans=(SourceSpan("f", "entry", 0, 7, "store @x, 1"),),
        verdict="confirmed",
        witness="  * T0 store x = 1",
    )
    text = finding.render()
    assert "error RACE001" in text
    assert "f/entry[0]" in text
    assert "verdict: confirmed" in text
    assert "T0 store x = 1" in text


# --- the pass registry -------------------------------------------------------


def test_shipped_passes_registered():
    keys = set(LINT_PASSES.keys())
    assert {
        "racy-access-pair",
        "redundant-fence",
        "weak-flavor-insufficient",
        "unfenced-publish",
    } <= keys


def test_pass_subset_selection():
    result = _lint(SB, "sb", passes=("redundant-fence",), confirm=False)
    assert result.passes == ("redundant-fence",)
    assert not any(f.code.startswith("RACE") for f in result.findings)


# --- FENCE101: redundant fence -----------------------------------------------

DUP_FENCE = """
global int x;

fn f(tid) {
  x = 1;
  fence;
  fence;
  x = 2;
}

thread f(0);
"""


def test_redundant_fence_flagged():
    result = _lint(DUP_FENCE, "dup", manual_fences=True, confirm=False)
    dups = [f for f in result.findings if f.code == "FENCE101"]
    assert len(dups) == 1
    assert dups[0].severity == "note"


def test_single_fence_not_flagged():
    source = DUP_FENCE.replace("  fence;\n  fence;\n", "  fence;\n")
    result = _lint(source, "single", manual_fences=True, confirm=False)
    assert not any(f.code == "FENCE101" for f in result.findings)


# --- FENCE102: weak flavor ---------------------------------------------------

EIEIO = """
global int x;
global int y;

fn left(tid) {
  local r = 0;
  x = 1;
  fence eieio;
  r = y;
  observe("r", r);
}

thread left(0);
thread left(1);
"""


def test_weak_flavor_insufficient_for_store_load_cut():
    result = _lint(
        EIEIO, "eieio", manual_fences=True,
        arch=get_backend("power"), confirm=False,
    )
    weak = [f for f in result.findings if f.code == "FENCE102"]
    assert len(weak) == 1
    assert "eieio" in weak[0].message
    assert "w->r" in weak[0].message


def test_full_sync_flavor_passes():
    source = EIEIO.replace("fence eieio;", "fence sync;")
    result = _lint(
        source, "sync", manual_fences=True,
        arch=get_backend("power"), confirm=False,
    )
    assert not any(f.code == "FENCE102" for f in result.findings)


def test_flavor_pass_needs_an_arch():
    result = _lint(EIEIO, "eieio", manual_fences=True, confirm=False)
    assert not any(f.code == "FENCE102" for f in result.findings)


# --- FENCE103: unfenced publish ----------------------------------------------

PUBLISH = """
global int x;
global int y;

fn producer(tid) {
  x = 41;
  y = &x;
}
fn consumer(tid) {
  local p = 0;
  local r = 0;
  p = y;
  if (p != 0) {
    r = *p;
    observe("r", r);
  }
}

thread producer(0);
thread consumer(1);
"""


def test_unfenced_publish_flagged_on_pso():
    result = _lint(PUBLISH, "publish", model=PSO, confirm=False)
    pubs = [f for f in result.findings if f.code == "FENCE103"]
    assert len(pubs) == 1
    assert "'x'" in pubs[0].message and "'y'" in pubs[0].message
    assert len(pubs[0].spans) == 2  # the init and the publish


def test_publish_with_fence_passes_on_pso():
    source = PUBLISH.replace("x = 41;\n  y = &x;", "x = 41;\n  fence;\n  y = &x;")
    program = compile_source(source, name="fenced", include_manual_fences=True)
    result = run_lint(
        program, AnalysisContext(program), model=PSO, confirm=False
    )
    assert not any(f.code == "FENCE103" for f in result.findings)


def test_publish_pass_silent_when_model_keeps_ww():
    result = _lint(PUBLISH, "publish", model=X86_TSO, confirm=False)
    assert not any(f.code == "FENCE103" for f in result.findings)


# --- run_lint result ---------------------------------------------------------


def test_exit_code_thresholds():
    result = _lint(SB, "sb")  # 2 confirmed races -> errors
    assert result.counts.error == 2
    assert result.exit_code("error") == 1
    assert result.exit_code("never") == 0

    clean = _lint(MP, "mp")
    assert clean.counts.total == 0
    assert clean.exit_code("note") == 0
    assert clean.worst_severity() is None


def test_refuted_candidates_are_notes_not_gate_failures():
    from repro.memmodel.litmus import LITMUS_TESTS

    program = compile_source(LITMUS_TESTS["dekker"].source, name="dekker")
    result = run_lint(program, AnalysisContext(program))
    assert result.counts.note == 3
    assert result.counts.warning == result.counts.error == 0
    assert result.refuted_candidates == 3
    assert result.explorer_complete is True
    assert result.exit_code("warning") == 0
