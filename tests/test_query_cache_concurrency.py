"""Concurrent-access regression tests for the persistent query cache.

The cluster points every worker process at one shared cache directory
(the artifact store). Steady-state routing makes each program
single-writer, but worker restarts and mid-flight resharding open
multi-writer windows — these tests hammer exactly that window and
assert the atomic write-rename discipline holds: readers never observe
a torn entry, and no temp files leak.
"""

import json
import multiprocessing

from repro.query.engine import PersistentQueryCache

#: Same-fingerprint writers race toward identical content (the
#: fingerprint pins the inputs), so each fingerprint has one truth.
FINGERPRINTS = [f"fp{i:02d}" for i in range(8)]


def _expected(fingerprint: str) -> dict:
    return {"fingerprint": fingerprint, "blob": "x" * 4096}


def _hammer(directory: str, iterations: int) -> int:
    """Interleave stores and loads; count every torn read."""
    cache = PersistentQueryCache(directory)
    torn = 0
    for i in range(iterations):
        fingerprint = FINGERPRINTS[i % len(FINGERPRINTS)]
        cache.store("points_to", fingerprint, _expected(fingerprint))
        loaded = cache.load(
            "points_to", FINGERPRINTS[(i * 3 + 1) % len(FINGERPRINTS)]
        )
        if loaded is not None and loaded != _expected(loaded["fingerprint"]):
            torn += 1
    return torn


def test_many_processes_share_one_cache_directory(tmp_path):
    directory = str(tmp_path / "cache")
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    ctx = multiprocessing.get_context(method)
    with ctx.Pool(4) as pool:
        torn_counts = pool.starmap(_hammer, [(directory, 200)] * 4)
    assert torn_counts == [0, 0, 0, 0]
    cache = PersistentQueryCache(directory)
    # Every entry on disk is complete, parseable, and correct.
    entries = sorted(cache.directory.glob("*.json"))
    assert len(entries) == len(FINGERPRINTS)
    for path in entries:
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload == _expected(payload["fingerprint"])
    # No abandoned write-side temp files survived the stampede.
    assert not list(cache.directory.glob("*.tmp"))
    assert not list(cache.directory.glob(".*"))


def test_store_failure_leaves_no_temp_file(tmp_path):
    cache = PersistentQueryCache(tmp_path)
    target = tmp_path / "q.fp.json"
    # Make the rename target unreachable: the name is now a directory.
    target.mkdir()
    cache.store("q", "fp", {"v": 1})  # swallowed, by contract
    assert cache.load("q", "fp") is None
    assert not list(tmp_path.glob("*.tmp")) and not list(tmp_path.glob(".*"))


def test_concurrent_same_fingerprint_store_threads(tmp_path):
    import threading

    cache = PersistentQueryCache(tmp_path)
    barrier = threading.Barrier(8)

    def writer():
        barrier.wait(timeout=10)
        for _ in range(50):
            cache.store("acquires", "fp", _expected("fp"))
            loaded = cache.load("acquires", "fp")
            assert loaded is None or loaded == _expected("fp")

    threads = [threading.Thread(target=writer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert cache.load("acquires", "fp") == _expected("fp")
    assert not list(tmp_path.glob(".*"))
