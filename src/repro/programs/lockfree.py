"""The lock-free programs of the paper's Table III.

* **Canneal** — cache-aware simulated annealing (from PARSEC): element
  locations swapped with atomic exchanges; the original ships explicit
  fences for a variety of architectures (10 of them, Section 5.3).
* **Matrix** — parallel matrix multiply with work distribution over a
  Michael & Scott lock-free queue. The paper's best case: Pensieve's
  unpruned ``w->r`` orderings put an mfence into the multiply inner
  loop (5.84x), while Control prunes them all (2.64x speedup).
* **SpanningTree** — parallel spanning tree over a work-stealing queue
  (Bader & Cong): per-thread deques with CAS steals and CAS node
  claims; 5 expert fences.

These programs use user-defined synchronization exclusively (paper
Section 5), so they are the ones where acquire detection matters most.
"""

from __future__ import annotations

from repro.programs.datagen import compute_section
from repro.programs.registry import BenchProgram

_CNX_DECLS, _CNX_FNS, _ = compute_section(
    "cnx", stream_reads=24, gather_reads=9, scatter_reads=27, guard_reads=4
)

CANNEAL = BenchProgram(
    name="canneal",
    suite="lockfree",
    description="Simulated annealing over a netlist: lock-free element "
    "swaps via xchg marking, cost deltas from neighbour locations, a "
    "temperature loop, and a done-flag handshake (10 expert fences).",
    manual_fences_paper=10,
    source=_CNX_DECLS
    + "\n"
    + _CNX_FNS
    + """
// Element e sits at location cn_loc[e]; -1 marks an in-flight swap.
global int cn_loc[16] = {0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15};
global int cn_neigh[32] = {1,15,2,14,3,13,4,12,5,11,6,10,7,9,8,8,
                           9,7,10,6,11,5,12,4,13,3,14,2,15,1,0,0};
global int cn_accepted;
global int cn_done[4];
global int cn_started[4];

fn cn_cost(e) {
  local n1 = 0;
  local n2 = 0;
  local l = 0;
  local c = 0;
  l = cn_loc[e];
  if (l < 0) {
    return 1000;
  }
  n1 = cn_loc[cn_neigh[e * 2]];
  n2 = cn_loc[cn_neigh[e * 2 + 1]];
  if (n1 >= 0) {
    c = c + (l - n1) * (l - n1);
  }
  if (n2 >= 0) {
    c = c + (l - n2) * (l - n2);
  }
  return c;
}

fn cn_try_swap(ea, eb) {
  local la = 0;
  local lb = 0;
  local before = 0;
  local after = 0;
  fence;  // prior iteration's location writes drain before costing
  before = cn_cost(ea) + cn_cost(eb);
  la = xchg(&cn_loc[ea], -1);
  if (la < 0) {
    return 0;
  }
  fence;
  lb = xchg(&cn_loc[eb], -1);
  if (lb < 0) {
    cn_loc[ea] = la;
    fence;
    return 0;
  }
  cn_loc[ea] = lb;
  fence;
  cn_loc[eb] = la;
  fence;
  after = cn_cost(ea) + cn_cost(eb);
  if (after > before + 8) {
    // Reject: swap back.
    la = xchg(&cn_loc[ea], -1);
    fence;
    lb = xchg(&cn_loc[eb], -1);
    cn_loc[ea] = lb;
    fence;
    cn_loc[eb] = la;
    fence;
    return 0;
  }
  return 1;
}

fn cn_worker(tid) {
  local temp = 0;
  local i = 0;
  local a = 0;
  local b = 0;
  local seed = 0;
  local ok = 0;
  local t = 0;
  cnx_init(tid);
  cn_started[tid] = 1;
  fence;
  t = 0;
  while (t < 4) {
    while (cn_started[t] == 0) { }
    t = t + 1;
  }
  seed = tid * 7 + 3;
  temp = 3;
  while (temp > 0) {
    i = 0;
    while (i < 6) {
      seed = (seed * 1103515245 + 12345) % 65536;
      a = seed % 16;
      b = (seed / 16) % 16;
      if (a != b) {
        ok = cn_try_swap(a, b);
        cn_accepted = cn_accepted + ok;
      }
      i = i + 1;
    }
    temp = temp - 1;
  }
  cnx_stream(tid);
  cnx_gather(tid);
  cnx_guard(tid);
  cn_done[tid] = 1;
  fence;
  t = 0;
  while (t < 4) {
    while (cn_done[t] == 0) { }
    t = t + 1;
  }
}

thread cn_worker(0);
thread cn_worker(1);
thread cn_worker(2);
thread cn_worker(3);
""",
)


_MXX_DECLS, _MXX_FNS, _ = compute_section(
    "mxx", stream_reads=31, gather_reads=8, scatter_reads=25, guard_reads=4
)

MATRIX = BenchProgram(
    name="matrix",
    suite="lockfree",
    description="Matrix multiply with row tasks distributed through a "
    "Michael & Scott lock-free queue; the dense inner loops are where "
    "Pensieve's unpruned w->r orderings hurt (paper: 5.84x).",
    manual_fences_paper=6,
    source=_MXX_DECLS
    + "\n"
    + _MXX_FNS
    + """
global int mx_a[64];
global int mx_b[64];
global int mx_c[64];
// MS queue node pool: pool[2i] = value, pool[2i+1] = next.
global int mx_pool[40];
global int mx_alloc;
global int mx_head = &mx_pool;
global int mx_tail = &mx_pool;
global int mx_feeding_done;
global int mx_rows_done;

fn mx_enqueue(v) {
  local idx = 0;
  local node = 0;
  local tail = 0;
  local next = 0;
  local won = 0;
  idx = fadd(&mx_alloc, 1);
  node = &mx_pool[2 * (idx + 1)];
  *node = v;
  *(node + 1) = 0;
  fence;
  won = 0;
  while (won == 0) {
    tail = mx_tail;
    next = *(tail + 1);
    if (tail == mx_tail) {
      if (next == 0) {
        if (cas(tail + 1, 0, node) == 0) {
          won = 1;
          cas(&mx_tail, tail, node);
        }
      } else {
        cas(&mx_tail, tail, next);
      }
    }
  }
}

fn mx_dequeue(tid) {
  local head = 0;
  local tail = 0;
  local next = 0;
  local value = 0;
  local got = 0;
  local trying = 1;
  while (trying == 1) {
    head = mx_head;
    tail = mx_tail;
    fence;
    next = *(head + 1);
    if (head == mx_head) {
      if (head == tail) {
        if (next == 0) {
          trying = 0;  // empty
        } else {
          cas(&mx_tail, tail, next);
        }
      } else {
        value = *next;
        if (cas(&mx_head, head, next) == head) {
          got = value;
          trying = 0;
        }
      }
    }
  }
  return got;
}

fn mx_multiply_row(row) {
  local col = 0;
  local k = 0;
  local round = 0;
  round = 0;
  while (round < 6) {
    col = 0;
    while (col < 8) {
      mx_c[row * 8 + col] = 0;
      k = 0;
      while (k < 8) {
        // Legacy-style accumulation directly into the output cell: the
        // store-then-load per k iteration is the w->r pattern that makes
        // Pensieve fence the inner loop (the paper's 5.84x extreme).
        mx_c[row * 8 + col] = mx_c[row * 8 + col]
                              + mx_a[row * 8 + k] * mx_b[k * 8 + col];
        k = k + 1;
      }
      col = col + 1;
    }
    round = round + 1;
  }
  fence;  // publish the finished row before bumping the done count
  fadd(&mx_rows_done, 1);
}

fn mx_worker(tid) {
  local row = 0;
  local i = 0;
  local spinning = 1;
  mxx_init(tid);
  if (tid == 0) {
    // The feeder initializes both operands before enqueuing any task,
    // so workers see A and B through the queue's happens-before.
    i = 0;
    while (i < 64) {
      mx_a[i] = (i * 3 + 1) % 9;
      mx_b[i] = (i * 5 + 2) % 7;
      i = i + 1;
    }
    fence;
    row = 1;
    while (row <= 8) {
      mx_enqueue(row);  // rows 1..8 (0 flags "empty")
      row = row + 1;
    }
    mx_feeding_done = 1;
    fence;
  }
  while (spinning == 1) {
    row = mx_dequeue(tid);
    if (row == 0) {
      fence;
      if (mx_feeding_done == 1) {
        if (mx_rows_done == 8) {
          spinning = 0;
        }
      }
    } else {
      mx_multiply_row(row - 1);
    }
  }
  mxx_stream(tid);
  mxx_gather(tid);
  mxx_guard(tid);
}

thread mx_worker(0);
thread mx_worker(1);
thread mx_worker(2);
thread mx_worker(3);
""",
)


_STX_DECLS, _STX_FNS, _ = compute_section(
    "stx", stream_reads=17, gather_reads=8, scatter_reads=23, guard_reads=9
)

SPANNING_TREE = BenchProgram(
    name="spanningtree",
    suite="lockfree",
    description="Parallel spanning tree (Bader & Cong): per-thread "
    "work-stealing deques of frontier nodes, CAS colour claims, parent "
    "writes; 5 expert fences (the Chase-Lev take/steal StoreLoads plus "
    "the termination handshake).",
    manual_fences_paper=5,
    source=_STX_DECLS
    + "\n"
    + _STX_FNS
    + """
// 4x4 grid graph, 4 neighbours per node (-1 = none).
global int st_adj[64] = {
  1, 4,-1,-1,  0, 2, 5,-1,  1, 3, 6,-1,  2, 7,-1,-1,
  0, 5, 8,-1,  1, 4, 6, 9,  2, 5, 7,10,  3, 6,11,-1,
  4, 9,12,-1,  5, 8,10,13,  6, 9,11,14,  7,10,15,-1,
  8,13,-1,-1,  9,12,14,-1, 10,13,15,-1, 11,14,-1,-1
};
global int st_color[16];
global int st_parent[16];
global int st_claimed;
// Per-thread deques: 16 slots each; top/bottom per thread.
global int st_deque[64];
global int st_top[4];
global int st_bottom[4];

fn st_push(tid, node) {
  local b = 0;
  b = st_bottom[tid];
  st_deque[tid * 16 + b % 16] = node + 1;
  fence;
  st_bottom[tid] = b + 1;
}

fn st_take(tid) {
  local b = 0;
  local t = 0;
  local task = 0;
  b = st_bottom[tid];
  b = b - 1;
  st_bottom[tid] = b;
  fence;
  t = st_top[tid];
  if (t <= b) {
    task = st_deque[tid * 16 + b % 16];
    if (t == b) {
      if (cas(&st_top[tid], t, t + 1) != t) {
        task = 0;
      }
      st_bottom[tid] = b + 1;
    }
  } else {
    st_bottom[tid] = b + 1;
  }
  return task;
}

fn st_steal(tid, victim) {
  local t = 0;
  local b = 0;
  local task = 0;
  t = st_top[victim];
  fence;
  b = st_bottom[victim];
  if (t < b) {
    task = st_deque[victim * 16 + t % 16];
    if (cas(&st_top[victim], t, t + 1) != t) {
      task = 0;
    }
  }
  return task;
}

fn st_visit(tid, node) {
  local k = 0;
  local n = 0;
  k = 0;
  while (k < 4) {
    n = st_adj[node * 4 + k];
    if (n >= 0) {
      if (cas(&st_color[n], 0, 1) == 0) {
        st_parent[n] = node + 1;
        fadd(&st_claimed, 1);
        st_push(tid, n);
      }
    }
    k = k + 1;
  }
}

fn st_worker(tid) {
  local task = 0;
  local victim = 0;
  local idle = 0;
  stx_init(tid);
  if (tid == 0) {
    if (cas(&st_color[0], 0, 1) == 0) {
      st_parent[0] = 100;  // root marker
      fadd(&st_claimed, 1);
      st_push(0, 0);
    }
  }
  fence;
  idle = 0;
  while (idle == 0) {
    task = st_take(tid);
    if (task != 0) {
      st_visit(tid, task - 1);
    } else {
      victim = 0;
      task = 0;
      while (victim < 4 && task == 0) {
        if (victim != tid) {
          task = st_steal(tid, victim);
        }
        victim = victim + 1;
      }
      if (task != 0) {
        st_visit(tid, task - 1);
      } else {
        fence;  // own deque restores must drain before the global check
        if (st_claimed == 16) {
          idle = 1;
        }
      }
    }
  }
  stx_stream(tid);
  stx_gather(tid);
  stx_guard(tid);
}

thread st_worker(0);
thread st_worker(1);
thread st_worker(2);
thread st_worker(3);
""",
)


LOCKFREE_PROGRAMS = (CANNEAL, MATRIX, SPANNING_TREE)
