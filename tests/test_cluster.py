"""Tests for the sharded multi-process analysis service (repro.cluster)."""

import asyncio
import json
import os
import signal
import socket
import struct
import threading
import time

import pytest

from repro.api import AnalyzeRequest, CheckRequest, ProgramSpec, Session
from repro.cluster import (
    ArtifactStore,
    ClusterConfig,
    ClusterServer,
    FrameDecodeError,
    HashRing,
    ProtocolError,
    WorkerLoop,
    frame_bytes,
    read_frame,
    recv_frame,
    render_stats,
    routing_key,
    run_worker,
    send_frame,
)
from repro.cluster.frontend import _Pending, _WorkerHandle

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SPEC = ProgramSpec.inline(MP, name="mp")


# --- consistent-hash router --------------------------------------------------


def test_ring_basics():
    ring = HashRing([0, 1, 2])
    assert len(ring) == 3 and 1 in ring and 9 not in ring
    assert ring.nodes() == frozenset({0, 1, 2})
    assert ring.locate("mp") in {0, 1, 2}
    ring.add(1)  # idempotent
    assert len(ring) == 3
    ring.remove(9)  # unknown: no-op
    assert len(ring) == 3


def test_ring_empty_and_validation():
    assert HashRing().locate("anything") is None
    with pytest.raises(ValueError):
        HashRing(replicas=0)


def test_ring_assignment_is_stable():
    ring = HashRing([0, 1, 2, 3])
    keys = [f"program-{i}" for i in range(100)]
    assert [ring.locate(k) for k in keys] == [ring.locate(k) for k in keys]


def test_ring_removal_remaps_only_the_dead_nodes_keys():
    ring = HashRing([0, 1, 2])
    keys = [f"program-{i}" for i in range(300)]
    before = {k: ring.locate(k) for k in keys}
    assert set(before.values()) == {0, 1, 2}  # all shards used
    ring.remove(2)
    for key in keys:
        if before[key] != 2:
            # The whole point of consistent hashing: surviving shards
            # keep every one of their warm programs.
            assert ring.locate(key) == before[key]
        else:
            assert ring.locate(key) in {0, 1}
    ring.add(2)
    assert {k: ring.locate(k) for k in keys} == before


def test_routing_key_shapes():
    assert routing_key({"program": {"name": "mp"}}) == "mp"
    assert routing_key({"program": {"name": None, "path": "x/y.c"}}) == "x/y.c"
    inline = routing_key({"program": {"source": "fn f() {}"}})
    assert inline is not None and inline.startswith("inline:")
    assert inline == routing_key({"program": {"source": "fn f() {}"}})
    # Not program-addressed: batch/fuzz sweeps may run anywhere.
    assert routing_key({"kind": "batch-request"}) is None
    assert routing_key({"program": "mp"}) is None
    assert routing_key({"program": {"name": "", "source": None}}) is None


# --- framing protocol --------------------------------------------------------


def test_frame_roundtrip_blocking():
    a, b = socket.socketpair()
    with a, b:
        payload = {"t": "req", "payload": {"text": "line1\nline2", "n": 3}}
        send_frame(a, payload)
        send_frame(a, {"t": "op"})
        assert recv_frame(b) == payload
        assert recv_frame(b) == {"t": "op"}
        a.close()
        assert recv_frame(b) is None  # clean EOF between frames


def test_frame_errors_blocking():
    with pytest.raises(ProtocolError):
        frame_bytes({"blob": "x" * 64}, max_frame=16)
    a, b = socket.socketpair()
    with a, b:
        a.sendall(struct.pack(">I", 2**31))  # absurd length word
        with pytest.raises(ProtocolError):
            recv_frame(b)
    a, b = socket.socketpair()
    with a, b:
        a.sendall(frame_bytes({"k": 1})[:-2])  # truncated body
        a.close()
        with pytest.raises(ProtocolError):
            recv_frame(b)
    a, b = socket.socketpair()
    with a, b:
        a.sendall(struct.pack(">I", 3) + b"{{{")  # not JSON
        with pytest.raises(FrameDecodeError):
            recv_frame(b)
    a, b = socket.socketpair()
    with a, b:
        a.sendall(struct.pack(">I", 7) + b"[1,2,3]")  # not an object
        with pytest.raises(FrameDecodeError):
            recv_frame(b)


def test_frame_roundtrip_async():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(frame_bytes({"ok": True}))
        reader.feed_eof()
        assert await read_frame(reader) == {"ok": True}
        assert await read_frame(reader) is None  # clean EOF

        truncated = asyncio.StreamReader()
        truncated.feed_data(frame_bytes({"k": "v"})[:-1])
        truncated.feed_eof()
        with pytest.raises(ProtocolError):
            await read_frame(truncated)

        mid_header = asyncio.StreamReader()
        mid_header.feed_data(b"\x00\x00")
        mid_header.feed_eof()
        with pytest.raises(ProtocolError):
            await read_frame(mid_header)

        oversized = asyncio.StreamReader()
        oversized.feed_data(struct.pack(">I", 2**31))
        oversized.feed_eof()
        with pytest.raises(ProtocolError):
            await read_frame(oversized)

    asyncio.run(scenario())


# --- worker loop (in-process, over a socketpair) -----------------------------


@pytest.fixture
def worker_link(tmp_path):
    ours, theirs = socket.socketpair()
    result: dict = {}

    def _serve():
        result["code"] = run_worker(
            theirs, 7, {"parallel": False}, str(tmp_path / "store")
        )

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    yield ours, result
    ours.close()
    thread.join(timeout=30)
    theirs.close()


def test_worker_answers_ops_and_requests(worker_link, tmp_path):
    sock, result = worker_link
    send_frame(sock, {"t": "op", "op": "ping"})
    pong = recv_frame(sock)
    assert pong["t"] == "res"
    assert pong["payload"]["pong"] and pong["payload"]["worker"] == 7

    request = AnalyzeRequest(program=SPEC)
    send_frame(sock, {"t": "req", "payload": request.to_payload()})
    res = recv_frame(sock)["payload"]
    assert res["ok"]
    # Byte-identical to the one-shot path: same Session, same report.
    assert res["report"] == Session(parallel=False).analyze(request).to_payload()

    send_frame(sock, {"t": "op", "op": "stats"})
    stats = recv_frame(sock)["payload"]
    assert stats["ok"] and stats["served"] == 1 and stats["errors"] == 0
    assert stats["session"]["query_cache"]["computes"] > 0
    # The worker's persistent cache landed in the shared artifact dir.
    assert list((tmp_path / "store").glob("*.json"))

    sock.close()
    time.sleep(0.1)
    assert result.get("code") == 0  # EOF is the graceful shutdown


def test_worker_survives_recoverable_frames(worker_link):
    sock, _result = worker_link
    sock.sendall(struct.pack(">I", 3) + b"{{{")  # body not JSON
    assert "not valid JSON" in recv_frame(sock)["payload"]["error"]
    send_frame(sock, {"t": "mystery"})
    assert "unknown frame type" in recv_frame(sock)["payload"]["error"]
    send_frame(sock, {"t": "op", "op": "mystery"})
    assert "unknown worker op" in recv_frame(sock)["payload"]["error"]
    send_frame(sock, {"t": "req", "payload": "not-a-dict"})
    assert "JSON object" in recv_frame(sock)["payload"]["error"]
    # After all that abuse the worker still answers real work.
    send_frame(sock, {"t": "op", "op": "ping"})
    assert recv_frame(sock)["payload"]["pong"]


def test_worker_drops_link_on_fatal_framing(tmp_path):
    ours, theirs = socket.socketpair()
    result: dict = {}

    def _serve():
        result["code"] = run_worker(theirs, 0, {"parallel": False}, None)

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    with ours:
        ours.sendall(struct.pack(">I", 2**31))  # unrecoverable framing
        thread.join(timeout=30)
    theirs.close()
    assert result.get("code") == 1


def test_worker_loop_reports_stats_failure_as_error(tmp_path):
    loop = WorkerLoop(0, {"parallel": False}, str(tmp_path))

    class _Boom:
        def stats(self):
            raise RuntimeError("stats exploded")

    loop.dispatcher.session = _Boom()
    res = loop.handle_frame({"t": "op", "op": "stats"})
    assert not res["payload"]["ok"]
    assert "stats exploded" in res["payload"]["error"]


# --- artifact store ----------------------------------------------------------


def test_artifact_store_lifecycle(tmp_path):
    shared = ArtifactStore.create(tmp_path / "shared")
    assert not shared.owned
    (shared.directory / "a.fp.json").write_text("{}", encoding="utf-8")
    stats = shared.stats()
    assert stats["entries"] == 1 and stats["bytes"] == 2
    shared.close()
    assert shared.directory.is_dir()  # explicit dirs are kept

    owned = ArtifactStore.create(None)
    assert owned.owned and owned.directory.is_dir()
    owned.close()
    assert not owned.directory.exists()


# --- frontend unit behavior (no real workers) --------------------------------


class _FakeProc:
    def __init__(self, alive=True):
        self.alive = alive

    def is_alive(self):
        return self.alive

    def join(self, timeout=None):
        pass

    def terminate(self):
        self.alive = False


def _bare_server(**overrides) -> ClusterServer:
    config = ClusterConfig(
        workers=1, session={"parallel": False}, **overrides
    )
    return ClusterServer(config=config)


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(workers=0)
    with pytest.raises(ValueError):
        ClusterConfig(workers=1, queue_limit=0)


def test_request_deadline_and_backpressure():
    async def scenario():
        server = _bare_server(request_timeout=0.05, queue_limit=2)
        server._loop = asyncio.get_running_loop()
        handle = _WorkerHandle(0, _FakeProc(), None, None, 1234)
        server._handles[0] = handle
        server._ring.add(0)
        # No pump drains the queue, so the deadline must fire.
        response = await server._request({"kind": "x"}, "mp")
        assert not response["ok"]
        assert response["error"].startswith("deadline exceeded")
        # One abandoned entry sits queued; one more fills the limit.
        handle.submit(_Pending({}, None, server._loop.create_future()))
        overloaded = await server._request({"kind": "x"}, "mp")
        assert overloaded["error"] == "overloaded"
        # Jittered hint: uniform over [0.5x, 1.5x) of the configured base.
        base = server.config.retry_after
        # round(..., 4) may land exactly on the band edges -> inclusive bounds
        assert 0.5 * base <= overloaded["retry_after"] <= 1.5 * base
        # With no workers at all the refusal is immediate and explicit.
        server._handles.clear()
        server._ring.remove(0)
        refused = await server._request({"kind": "x"}, "mp")
        assert "no analysis workers" in refused["error"]

    asyncio.run(scenario())


def test_redispatch_semantics():
    async def scenario():
        server = _bare_server(queue_limit=1)
        server._loop = asyncio.get_running_loop()

        def entry(**kw):
            pending = _Pending(
                {"t": "req", "payload": {}}, "mp",
                server._loop.create_future(),
                control=kw.get("control", False),
            )
            pending.retried = kw.get("retried", False)
            return pending

        # Control probes are never forwarded.
        probe = entry(control=True)
        server._redispatch(probe)
        assert "connection lost" in probe.future.result()["error"]
        # A twice-crashed request fails cleanly instead of looping.
        twice = entry(retried=True)
        server._redispatch(twice)
        assert "crashed twice" in twice.future.result()["error"]
        # No surviving worker: explicit failure.
        orphan = entry()
        server._redispatch(orphan)
        assert "no replacement" in orphan.future.result()["error"]
        # A survivor at capacity refuses rather than queues unboundedly.
        handle = _WorkerHandle(0, _FakeProc(), None, None, 1)
        handle.submit(entry())
        server._handles[0] = handle
        server._ring.add(0)
        full = entry()
        server._redispatch(full)
        assert full.future.result()["error"] == "overloaded"
        # With room, the entry is forwarded exactly once.
        handle.queue.get_nowait()
        moved = entry()
        server._redispatch(moved)
        assert moved.retried and handle.queue.qsize() == 1
        # Deadline-answered entries are left alone.
        done = entry()
        done.future.set_result({"ok": False, "error": "deadline"})
        server._redispatch(done)
        assert handle.queue.qsize() == 1

    asyncio.run(scenario())


def test_render_stats_shapes():
    payload = {
        "server": {"workers": 2, "configured_workers": 2, "served": 5,
                   "errors": 1, "restarts": 1},
        "cluster": {
            "workers": [
                {"worker": 0, "pid": 11, "queue_depth": 0, "inflight": 1,
                 "served": 3, "restarts": 1,
                 "session": {"query_cache": {"hit_rate": 0.25}}},
                {"worker": 1, "pid": 12, "queue_depth": 2, "inflight": 0,
                 "answered": 2, "restarts": 0, "session": None},
            ],
            "shard_map": {"mp": 0, "sb": 1},
            "store": {"entries": 4, "bytes": 128, "directory": "/tmp/s"},
        },
    }
    text = render_stats(payload)
    assert "2 worker(s) alive" in text
    assert "worker 0 (pid 11)" in text and "cache-hit-rate=0.25" in text
    assert "cache-hit-rate=n/a" in text  # worker 1 had no session probe
    assert "mp->w0" in text and "4 artifact(s)" in text
    assert render_stats({}).startswith("cluster: 0 worker(s)")


# --- end-to-end cluster ------------------------------------------------------


@pytest.fixture(scope="module")
def cluster():
    server = ClusterServer(
        config=ClusterConfig(
            workers=2, session={"parallel": False}, health_interval=0.1
        )
    )
    server.start_in_thread()
    yield server
    server.stop_threaded()


def _connect(server):
    sock = socket.create_connection((server.host, server.port), timeout=60)
    return sock, sock.makefile("rw", encoding="utf-8", newline="\n")


def _roundtrip(server, lines):
    sock, stream = _connect(server)
    with sock:
        responses = []
        for line in lines:
            stream.write(line + "\n")
            stream.flush()
            responses.append(json.loads(stream.readline()))
        return responses


def test_cluster_ping(cluster):
    (pong,) = _roundtrip(cluster, ['{"op": "ping", "id": 3}'])
    assert pong["ok"] and pong["pong"] and pong["id"] == 3
    assert pong["workers"] == 2


def test_cluster_reports_byte_identical_to_one_shot(cluster):
    analyze = AnalyzeRequest(program=SPEC)
    check = CheckRequest(program=SPEC, max_states=200_000)
    responses = _roundtrip(
        cluster,
        [
            json.dumps({"id": 1, "request": analyze.to_payload()}),
            json.dumps(check.to_payload()),
        ],
    )
    assert all(r["ok"] for r in responses)
    assert responses[0]["id"] == 1 and responses[1]["id"] is None
    one_shot = Session(parallel=False)
    assert responses[0]["report"] == one_shot.analyze(analyze).to_payload()
    assert responses[1]["report"] == one_shot.check(check).to_payload()
    # Byte-level: the cluster serializes exactly what the CLI would.
    assert json.dumps(responses[0]["report"], indent=2, sort_keys=True) == (
        one_shot.analyze(analyze).to_json()
    )


def test_cluster_warm_edit_stays_on_the_owning_shard(cluster):
    warm = _roundtrip(
        cluster,
        [json.dumps(AnalyzeRequest(program=SPEC, stats=True).to_payload())],
    )[0]
    assert warm["ok"]
    edited = ProgramSpec.inline(MP.replace("data = 1;", "data = 3;"), name="mp")
    incremental = _roundtrip(
        cluster,
        [json.dumps(AnalyzeRequest(program=edited, stats=True).to_payload())],
    )[0]
    assert incremental["ok"]
    # The edit landed on the worker holding the warm context: sibling
    # functions' facts stayed cached across the wire edit.
    assert incremental["report"]["cache_stats"]["hits"] > 0


def test_cluster_concurrent_clients_and_same_program_edits(cluster):
    clients = 4
    barrier = threading.Barrier(clients)
    results: list = [None] * clients

    def client(slot):
        edited = ProgramSpec.inline(
            MP.replace("data = 1;", f"data = {slot + 10};"), name="mp"
        )
        request = AnalyzeRequest(program=edited)
        barrier.wait(timeout=30)
        results[slot] = _roundtrip(
            cluster, [json.dumps({"id": slot, "request": request.to_payload()})]
        )[0]

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    for slot, response in enumerate(results):
        assert response is not None and response["ok"]
        assert response["id"] == slot


def test_cluster_answers_errors_without_dropping_the_connection(cluster):
    responses = _roundtrip(
        cluster,
        [
            "not-json",
            "[1, 2, 3]",
            '{"id": 5, "request": "nope"}',
            '{"op": "mystery"}',
            '{"kind": "bogus-request"}',
            '{"op": "ping"}',
        ],
    )
    assert not responses[0]["ok"] and "not valid JSON" in responses[0]["error"]
    assert not responses[1]["ok"] and "JSON object" in responses[1]["error"]
    assert not responses[2]["ok"] and responses[2]["id"] == 5
    assert not responses[3]["ok"] and "unknown op" in responses[3]["error"]
    # A request without a program key round-robins to a worker, whose
    # dispatcher answers the schema error.
    assert not responses[4]["ok"]
    assert "not a servable request kind" in responses[4]["error"]
    # The stream stayed in sync through all of it.
    assert responses[5]["ok"] and responses[5]["pong"]


def test_cluster_half_closed_client_still_gets_its_answer(cluster):
    sock, stream = _connect(cluster)
    with sock:
        line = json.dumps(AnalyzeRequest(program=SPEC).to_payload())
        sock.sendall((line + "\n").encode("utf-8"))
        sock.shutdown(socket.SHUT_WR)  # half-close: no more requests
        response = json.loads(stream.readline())
        assert response["ok"]


def test_cluster_oversized_line_is_answered_then_closed():
    server = ClusterServer(
        config=ClusterConfig(
            workers=1, session={"parallel": False}, max_line=4096
        )
    )
    server.start_in_thread()
    try:
        sock, stream = _connect(server)
        with sock:
            sock.sendall(b'{"pad": "' + b"x" * 8192 + b'"}\n')
            response = json.loads(stream.readline())
            assert not response["ok"] and "exceeds" in response["error"]
            assert stream.readline() == ""  # stream closed: no resync
    finally:
        server.stop_threaded()


def test_cluster_stats_exposes_per_worker_state(cluster):
    (stats,) = _roundtrip(cluster, ['{"op": "stats", "id": 9}'])
    assert stats["ok"] and stats["id"] == 9
    server_row = stats["server"]
    assert server_row["workers"] == 2 and not server_row["draining"]
    assert server_row["served"] > 0
    rows = stats["cluster"]["workers"]
    assert [row["worker"] for row in rows] == [0, 1]
    for row in rows:
        assert row["alive"] and isinstance(row["pid"], int)
        assert row["queue_depth"] == 0 and row["inflight"] == 0
        session = row["session"]
        assert session is not None and "query_cache" in session
        assert 0.0 <= session["query_cache"]["hit_rate"] <= 1.0
    # mp was analyzed earlier in the module: its shard is pinned.
    shard_map = stats["cluster"]["shard_map"]
    assert shard_map.get("mp") in {0, 1}
    store = stats["cluster"]["store"]
    assert store["owned"] and store["entries"] > 0
    assert "worker 0" in render_stats(stats)


def test_cluster_rejects_stranger_on_internal_port(cluster):
    with socket.create_connection(
        ("127.0.0.1", cluster._internal_port), timeout=10
    ) as sock:
        send_frame(sock, {"t": "hello", "worker": 0, "token": "wrong"})
        sock.settimeout(10)
        assert sock.recv(1) == b""  # frontend hangs up on bad tokens


def test_cluster_worker_crash_recovers_and_restarts(cluster):
    # Seat the shard, then find out who owns it.
    seed = _roundtrip(
        cluster, [json.dumps(AnalyzeRequest(program=SPEC).to_payload())]
    )[0]
    assert seed["ok"]
    (stats,) = _roundtrip(cluster, ['{"op": "stats"}'])
    owner = stats["cluster"]["shard_map"]["mp"]
    victim_pid = next(
        row["pid"] for row in stats["cluster"]["workers"]
        if row["worker"] == owner
    )
    restarts_before = stats["server"]["restarts"]

    sock, stream = _connect(cluster)
    with sock:
        os.kill(victim_pid, signal.SIGKILL)
        # The very next request for the dead worker's shard must still
        # be answered — forwarded to a survivor or served post-restart —
        # over the same connection.
        line = json.dumps(AnalyzeRequest(program=SPEC).to_payload())
        stream.write(line + "\n")
        stream.flush()
        response = json.loads(stream.readline())
        assert response["ok"]
        # And the slot comes back: restart-on-crash.
        deadline = time.time() + 30
        while time.time() < deadline:
            stream.write('{"op": "stats"}\n')
            stream.flush()
            stats = json.loads(stream.readline())
            if (
                stats["server"]["workers"] == 2
                and stats["server"]["restarts"] > restarts_before
            ):
                break
            time.sleep(0.2)
        assert stats["server"]["workers"] == 2
        assert stats["server"]["restarts"] > restarts_before
        pids = {row["pid"] for row in stats["cluster"]["workers"]}
        assert victim_pid not in pids


def test_cluster_shutdown_op_drains_and_stops():
    server = ClusterServer(
        config=ClusterConfig(workers=1, session={"parallel": False})
    )
    server.start_in_thread()
    (bye,) = _roundtrip(server, ['{"op": "shutdown"}'])
    assert bye["ok"] and bye["bye"]
    server._thread.join(timeout=60)
    assert not server._thread.is_alive()
    # The owned artifact store is removed on the way out.
    assert not server.store.directory.exists()


# --- observability -----------------------------------------------------------


def test_retry_hint_jitter_spread():
    server = _bare_server()
    base = server.config.retry_after
    hints = {server._retry_hint() for _ in range(500)}
    # round(..., 4) may land exactly on the band edges -> inclusive bounds
    assert all(0.5 * base <= hint <= 1.5 * base for hint in hints)
    assert len(hints) > 50  # genuinely spread, not quantized to a point
    assert max(hints) - min(hints) > 0.5 * base  # covers most of the band


def test_stats_op_surfaces_restarting_slots():
    async def scenario():
        server = ClusterServer(config=ClusterConfig(
            workers=2, session={"parallel": False}, stats_timeout=0.05
        ))
        server._loop = asyncio.get_running_loop()
        server._restarts[1] = 3
        server._handles[0] = _WorkerHandle(0, _FakeProc(), None, None, 77)
        stats = await server._stats_op(None)
        rows = stats["cluster"]["workers"]
        assert [row["worker"] for row in rows] == [0, 1]
        live, respawning = rows
        assert live["pid"] == 77 and not live.get("restarting")
        assert respawning["restarting"] and respawning["pid"] is None
        assert not respawning["alive"] and respawning["restarts"] == 3

    asyncio.run(scenario())


def test_render_stats_shows_restarting_workers():
    payload = {
        "server": {"workers": 1, "configured_workers": 2, "served": 3,
                   "errors": 0, "restarts": 2},
        "cluster": {"workers": [
            {"worker": 0, "pid": 11, "queue_depth": 0, "inflight": 0,
             "served": 3, "restarts": 0, "session": None},
            {"worker": 1, "pid": None, "alive": False, "restarting": True,
             "queue_depth": 0, "inflight": 0, "answered": 0, "restarts": 2,
             "session": None},
        ]},
    }
    text = render_stats(payload)
    assert "worker 0 (pid 11)" in text
    assert "worker 1 (restarting): restarts=2" in text


def test_cluster_metrics_op_aggregates_workers(cluster):
    request = json.dumps(AnalyzeRequest(program=SPEC).to_payload())
    analyze, response = _roundtrip(cluster, [request, '{"op": "metrics"}'])
    assert analyze["ok"] and response["ok"]
    counters = response["metrics"]["counters"]
    # Frontend-side per-op accounting...
    assert any(
        key.startswith("repro_cluster_requests_total") for key in counters
    )
    # ...merged with worker-side query-engine counters over the link.
    assert counters.get("repro_query_lookups_total", 0) > 0
    assert response["workers"], "per-worker payloads ride along"
    assert "# TYPE repro_query_lookups_total counter" in response["text"]


def test_cluster_trace_propagates_one_id_end_to_end(tmp_path):
    from repro.obs import trace as obs_trace

    obs_trace.disable()
    tracer = obs_trace.enable()
    server = ClusterServer(config=ClusterConfig(
        workers=1, session={"parallel": False}, trace=True
    ))
    try:
        server.start_in_thread()
        (response,) = _roundtrip(
            server, [json.dumps(AnalyzeRequest(program=SPEC).to_payload())]
        )
        assert response["ok"]
    finally:
        server.stop_threaded()
        obs_trace.disable()

    by_name: dict[str, list[dict]] = {}
    for event in tracer.events():
        by_name.setdefault(event["name"], []).append(event)
    for name in ("cluster.request", "cluster.dispatch", "cluster.link",
                 "worker.dispatch", "query.eval"):
        assert name in by_name, f"missing {name} span"

    request_span = by_name["cluster.request"][0]
    trace_id = request_span["args"]["trace"]
    assert trace_id
    # One trace id spans the frontend accept, the ring dispatch, the
    # framed link, and the worker-side dispatch + query evaluations.
    for name in ("cluster.dispatch", "cluster.link", "worker.dispatch",
                 "query.eval"):
        assert all(
            event["args"]["trace"] == trace_id for event in by_name[name]
        ), f"{name} spans left the trace"
    # Two processes, one flame: worker spans keep their own pid.
    assert by_name["worker.dispatch"][0]["pid"] != request_span["pid"]

    out = tmp_path / "trace.json"
    obs_trace.export_chrome(out, tracer.events())
    data = json.loads(out.read_text(encoding="utf-8"))
    assert set(data) == {"traceEvents", "displayTimeUnit"}
    timestamps = [event["ts"] for event in data["traceEvents"]]
    assert timestamps == sorted(timestamps)
    for event in data["traceEvents"]:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        assert event["ph"] == "X"
