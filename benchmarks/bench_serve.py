"""Serving-layer load benchmark: threaded daemon vs worker cluster.

Drives ``repro serve`` the way a fleet would: N concurrent JSON-lines
clients, each cycling through M corpus programs with a warm-edit mix
(steady-state repeats plus periodic inline source edits under the same
program name, so requests stay pinned to their warm shard). The same
load runs against both serving modes —

* ``--workers 0``: the single-process threaded daemon (baseline; every
  request contends for one GIL), and
* ``--workers N``: the sharded multi-process cluster,

and the artifact records per-mode throughput and latency percentiles
(p50/p95/p99) plus the cluster/threaded speedup. Timings are
machine-dependent, so the committed ``BENCH_serve.json`` is a record,
not a replay gate; CI regenerates it on a fixed budget and enforces
``--min-speedup`` on a known multi-core runner::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --clients 8 \\
        --requests 12 --workers 4 --min-speedup 1.5 --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import AnalyzeRequest, ProgramSpec  # noqa: E402
from repro.programs import get_program  # noqa: E402

#: Small, fast corpus subset: enough shard diversity to spread across
#: workers without making one request dominate the percentiles.
DEFAULT_PROGRAMS = ("fft", "matrix", "spanningtree", "canneal", "radix",
                    "lu-con")

#: Every EDIT_EVERY-th request per client sends an edited inline source
#: under the same program name (the daemon's warm-edit path).
EDIT_EVERY = 3


def _request_line(name: str, iteration: int) -> str:
    if iteration % EDIT_EVERY:
        spec = ProgramSpec(kind="corpus", name=name)
    else:
        edit = iteration // EDIT_EVERY
        source = get_program(name).source + (
            f"\nfn warm_edit_{edit}(tid) {{ local t = 0; t = t + 1; }}\n"
        )
        spec = ProgramSpec.inline(source, name=name)
    return json.dumps(AnalyzeRequest(program=spec).to_payload())


class ServeProcess:
    """One ``repro serve`` subprocess, announced port and all."""

    def __init__(self, workers: int) -> None:
        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--serial",
             "--workers", str(workers)],
            stdout=subprocess.PIPE,
            cwd=root,
            env=env,
        )
        announce = json.loads(self.proc.stdout.readline())
        self.host = announce["serving"]["host"]
        self.port = announce["serving"]["port"]

    def stop(self) -> None:
        try:
            with socket.create_connection((self.host, self.port), 10) as sock:
                sock.sendall(b'{"op": "shutdown"}\n')
                sock.makefile("r").readline()
            self.proc.wait(timeout=60)
        except (OSError, subprocess.TimeoutExpired):
            self.proc.kill()
            self.proc.wait(timeout=10)
        finally:
            self.proc.stdout.close()


def _drive_client(host, port, lines, latencies, errors, barrier):
    with socket.create_connection((host, port), timeout=600) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        barrier.wait(timeout=120)
        for line in lines:
            start = time.perf_counter()
            stream.write(line + "\n")
            stream.flush()
            response = json.loads(stream.readline())
            latencies.append(time.perf_counter() - start)
            if not response.get("ok"):
                errors.append(response.get("error", "?"))


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q / 100 * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_load(workers: int, clients: int, requests: int,
             programs: tuple[str, ...]) -> dict:
    """One mode's measurement: clients × requests against one server."""
    server = ServeProcess(workers)
    try:
        # Pre-build request lines so client threads measure serving, not
        # JSON assembly; each client walks the corpus at its own offset
        # so shards are exercised concurrently, not in lockstep.
        per_client = []
        for client in range(clients):
            lines = [
                _request_line(programs[(client + i) % len(programs)], i)
                for i in range(requests)
            ]
            per_client.append(lines)
        barrier = threading.Barrier(clients)
        latencies: list[float] = []
        errors: list[str] = []
        threads = [
            threading.Thread(
                target=_drive_client,
                args=(server.host, server.port, lines, latencies, errors,
                      barrier),
            )
            for lines in per_client
        ]
        wall = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall
    finally:
        server.stop()
    latencies.sort()
    total = clients * requests
    return {
        "workers": workers,
        "requests": total,
        "errors": len(errors),
        "error_samples": sorted(set(errors))[:5],
        "wall_s": round(wall, 3),
        "throughput_rps": round(total / wall, 2) if wall else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1e3, 2),
            "p95": round(_percentile(latencies, 95) * 1e3, 2),
            "p99": round(_percentile(latencies, 99) * 1e3, 2),
            "mean": round(statistics.fmean(latencies) * 1e3, 2)
            if latencies else 0.0,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client connections")
    parser.add_argument("--requests", type=int, default=12,
                        help="requests per client")
    parser.add_argument("--workers", type=int,
                        default=max(2, os.cpu_count() or 2),
                        help="cluster size for the multi-process mode")
    parser.add_argument("--programs", nargs="*", default=list(DEFAULT_PROGRAMS),
                        help="corpus subset to cycle through")
    parser.add_argument("--out", default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless cluster throughput is at least "
                             "this multiple of the threaded baseline")
    args = parser.parse_args(argv)

    programs = tuple(args.programs)
    threaded = run_load(0, args.clients, args.requests, programs)
    cluster = run_load(args.workers, args.clients, args.requests, programs)
    speedup = (
        cluster["throughput_rps"] / threaded["throughput_rps"]
        if threaded["throughput_rps"] else 0.0
    )
    report = {
        "config": {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "programs": list(programs),
            "edit_every": EDIT_EVERY,
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "modes": {"threaded": threaded, "cluster": cluster},
        "speedup": round(speedup, 2),
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
    if threaded["errors"] or cluster["errors"]:
        print("FAIL: load run answered errors", file=sys.stderr)
        return 1
    if args.min_speedup and speedup < args.min_speedup:
        print(
            f"FAIL: cluster speedup {speedup:.2f}x is below the "
            f"{args.min_speedup}x gate on {os.cpu_count()} CPUs",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
