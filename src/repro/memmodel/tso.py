"""Exhaustive x86-TSO operational model exploration.

Standard operational TSO: each thread owns a FIFO store buffer.

* stores enqueue into the buffer;
* loads forward from the newest matching buffer entry, else read memory;
* buffer entries drain to memory nondeterministically, in FIFO order;
* ``mfence`` and atomic RMWs (LOCK-prefixed on x86) execute only with
  an empty buffer — RMWs then act directly and atomically on memory;
* compiler directives have no hardware effect.

The explorer enumerates every interleaving of thread steps and buffer
flushes. Final outcomes (all threads done, all buffers drained) are
comparable with :class:`repro.memmodel.sc.SCExplorer` outcomes — the
reproduction's correctness criterion is exactly the paper's: a fence
placement is good if the TSO outcome set of the fenced program equals
the SC outcome set of the original for the data reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.function import Program
from repro.ir.instructions import FenceKind
from repro.memmodel.interpreter import (
    ExecutionError,
    PendingAction,
    ThreadExecutor,
    ThreadState,
)
from repro.memmodel.sc import ExplorationResult, Outcome, make_outcome

Buffer = tuple[tuple[int, int], ...]  # FIFO of (addr, value); oldest first


class TSOExplorer:
    """DFS over the TSO state graph (threads x buffers x memory)."""

    def __init__(
        self,
        program: Program,
        max_states: int = 1_000_000,
        max_steps_per_thread: int = 100_000,
        observe_globals: Optional[list[str]] = None,
    ) -> None:
        self.program = program
        self.executor = ThreadExecutor(program)
        self.layout = self.executor.layout
        self.max_states = max_states
        self.max_steps = max_steps_per_thread
        self.observe_globals = observe_globals

    def _state_key(
        self,
        memory: dict[int, int],
        threads: list[ThreadState],
        buffers: list[Buffer],
    ) -> tuple:
        return (
            tuple(sorted(memory.items())),
            tuple(ts.key() for ts in threads),
            tuple(buffers),
        )

    @staticmethod
    def _buffer_lookup(buffer: Buffer, addr: int) -> Optional[int]:
        """Newest buffered value for ``addr``, if any (store forwarding)."""
        for entry_addr, entry_value in reversed(buffer):
            if entry_addr == addr:
                return entry_value
        return None

    def explore(self) -> ExplorationResult:
        memory = self.layout.initial_memory()
        threads = self.executor.start_all()
        buffers: list[Buffer] = [() for _ in threads]
        outcomes: set[Outcome] = set()
        visited: set[tuple] = set()
        stack = [(memory, threads, buffers)]
        states = 0
        complete = True

        while stack:
            memory, threads, buffers = stack.pop()
            key = self._state_key(memory, threads, buffers)
            if key in visited:
                continue
            visited.add(key)
            states += 1
            if states > self.max_states:
                complete = False
                break

            progressed = False

            # (a) buffer flush transitions.
            for i, buffer in enumerate(buffers):
                if not buffer:
                    continue
                new_memory = dict(memory)
                (addr, value), rest = buffer[0], buffer[1:]
                new_memory[addr] = value
                new_buffers = list(buffers)
                new_buffers[i] = rest
                stack.append(
                    (new_memory, [t.clone() for t in threads], new_buffers)
                )
                progressed = True

            # (b) thread step transitions.
            for i, ts in enumerate(threads):
                if ts.done:
                    continue
                new_threads = [t.clone() for t in threads]
                new_memory = dict(memory)
                new_buffers = list(buffers)
                clone = new_threads[i]
                pending = self.executor.next_action(clone, self.max_steps)
                if pending is None:
                    stack.append((new_memory, new_threads, new_buffers))
                    progressed = True
                    continue
                if not self._apply(new_memory, new_buffers, i, clone, pending):
                    continue  # blocked (fence/RMW with non-empty buffer)
                stack.append((new_memory, new_threads, new_buffers))
                progressed = True

            if not progressed:
                if any(buffers):  # pragma: no cover - flushes always enabled
                    raise ExecutionError("deadlock with non-empty buffer")
                outcomes.add(
                    make_outcome(self.layout, memory, threads, self.observe_globals)
                )

        return ExplorationResult(outcomes, states, complete)

    def _apply(
        self,
        memory: dict[int, int],
        buffers: list[Buffer],
        i: int,
        ts: ThreadState,
        pending: PendingAction,
    ) -> bool:
        """Perform a thread action; False if the action is blocked."""
        buffer = buffers[i]
        if pending.kind == "load":
            value = self._buffer_lookup(buffer, pending.addr)
            if value is None:
                value = memory.get(pending.addr, 0)
            self.executor.commit(ts, pending, value)
            return True
        if pending.kind == "store":
            buffers[i] = buffer + ((pending.addr, pending.value),)
            self.executor.commit(ts, pending)
            return True
        if pending.kind == "rmw":
            if buffer:
                return False  # LOCK-prefixed: drains the buffer first
            old = memory.get(pending.addr, 0)
            result, new = pending.rmw_result(old)
            if new is not None:
                memory[pending.addr] = new
            self.executor.commit(ts, pending, result)
            return True
        if pending.kind == "fence":
            if pending.fence_kind is FenceKind.FULL and buffer:
                return False  # mfence waits for the buffer to drain
            self.executor.commit(ts, pending)
            return True
        raise ExecutionError(f"unknown action {pending.kind}")  # pragma: no cover


def tso_equals_sc_for_observations(
    program_unfenced: Program,
    program_fenced: Program,
    max_states: int = 1_000_000,
) -> tuple[bool, set, set]:
    """Compare observation sets: SC of the original program vs TSO of
    the fenced program (the paper's correctness criterion for data
    reads). Returns (equal, sc_only, tso_only)."""
    from repro.memmodel.sc import SCExplorer

    sc = SCExplorer(program_unfenced, max_states=max_states).explore()
    tso = TSOExplorer(program_fenced, max_states=max_states).explore()
    if not (sc.complete and tso.complete):
        raise ExecutionError("state-space bound hit; raise max_states")
    sc_obs = sc.observation_sets()
    tso_obs = tso.observation_sets()
    return sc_obs == tso_obs, sc_obs - tso_obs, tso_obs - sc_obs
