"""Cross-arch oracle soundness (satellite for the repro.arch PR).

Every well-synchronized litmus/generated program must stay
violation-free after *flavored lowering* on each backend — the oracle
lowers variant placements through the model's arch backend, so these
runs exercise lwsync/eieio/dmbst selections end to end — and the
deliberately-null ``vanilla`` detector must still violate on dekker
under every weak model (oracle liveness). The slow generator shapes
(barrier, queue) are covered by the nightly fuzz matrix instead.
"""

import pytest

from repro.memmodel.litmus import LITMUS_TESTS
from repro.registry.models import weak_model_keys
from repro.validate.generator import generate_program
from repro.validate.oracle import run_oracle

WEAK_MODELS = ("x86-tso", "pso", "arm", "power")

WS_LITMUS = sorted(
    name for name, t in LITMUS_TESTS.items() if t.well_synchronized
)
FAST_SHAPES = ("handoff", "publish", "dekker")


def _litmus_oracle(name, variants, model):
    test = LITMUS_TESTS[name]
    return run_oracle(
        test.source,
        test.name,
        variants=variants,
        model=model,
        sync_globals=test.sync_globals,
        explore_unfenced=False,
    )


def test_weak_model_registry_covers_the_arch_matrix():
    assert set(WEAK_MODELS) <= set(weak_model_keys())


@pytest.mark.parametrize("model", WEAK_MODELS)
@pytest.mark.parametrize("name", WS_LITMUS)
def test_trusted_placements_stay_sound_after_lowering(model, name):
    """Flavored trusted placements restore SC on every backend for the
    well-synchronized litmus corpus."""
    report = _litmus_oracle(name, None, model)  # None = trusted set
    assert report.complete
    assert report.well_synchronized
    assert report.full_restores_sc
    assert report.violations == ()
    for verdict in report.verdicts:
        assert verdict.restores_sc, (model, name, verdict.variant)


@pytest.mark.parametrize("model", WEAK_MODELS)
@pytest.mark.parametrize("shape", FAST_SHAPES)
def test_generated_programs_stay_sound_after_lowering(model, shape):
    """Well-synchronized-by-construction generator scaffolds survive
    flavored lowering on every weak model (seed 0 of each fast shape)."""
    program = generate_program(0, shape)
    report = run_oracle(
        program.source,
        program.name,
        variants=("address+control", "pensieve"),
        model=model,
        sync_globals=program.sync_globals,
        explore_unfenced=False,
    )
    assert report.complete
    assert report.violations == ()
    for verdict in report.verdicts:
        assert verdict.restores_sc, (model, shape, verdict.variant)


@pytest.mark.parametrize("model", WEAK_MODELS)
def test_vanilla_violates_on_dekker_under_every_weak_model(model):
    """Oracle liveness cross-arch: the null detector's placement must
    fail dekker's mutual exclusion on every weak model."""
    report = _litmus_oracle("dekker", ("vanilla",), model)
    assert report.complete
    assert report.contract_applies
    flagged = [v.variant for v in report.violations]
    assert flagged == ["vanilla"]


@pytest.mark.parametrize("model", ("arm", "power"))
def test_load_side_relaxation_catches_vanilla_on_mp(model):
    """TSO never breaks message passing, so vanilla skates there — but
    the relaxed backends reorder the consumer's loads, and the oracle
    must catch the missing fence."""
    report = _litmus_oracle("mp", ("vanilla",), model)
    assert report.contract_applies
    assert [v.variant for v in report.violations] == ["vanilla"]


def test_tso_mp_stays_out_of_vanillas_reach():
    """Control: on x86-TSO the same null placement is (accidentally)
    fine for MP — w->w and r->r come for free."""
    report = _litmus_oracle("mp", ("vanilla",), "x86-tso")
    assert report.contract_applies
    assert report.violations == ()
