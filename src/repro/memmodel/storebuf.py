"""Per-address store-FIFO helpers shared by the weak-model explorers.

Both PSO and the relaxed ARM/POWER explorers buffer stores per address:
a hashable, sorted ``((addr, (v0, v1, ...)), ...)`` map from address to
FIFO of pending values, oldest first. PSO keeps one such map per
thread; the relaxed explorer keeps a *sequence* of them (groups sealed
by store fences). The representation and its accessors live here so a
fix to one explorer's buffer handling reaches the other.
"""

from __future__ import annotations

AddrFifoMap = tuple[tuple[int, tuple[int, ...]], ...]


def fifo_get(buffer: AddrFifoMap, addr: int) -> tuple[int, ...]:
    for entry_addr, values in buffer:
        if entry_addr == addr:
            return values
    return ()


def fifo_set(buffer: AddrFifoMap, addr: int, values: tuple[int, ...]) -> AddrFifoMap:
    rest = tuple((a, v) for a, v in buffer if a != addr)
    if not values:
        return rest
    return tuple(sorted(rest + ((addr, values),)))
