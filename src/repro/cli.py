"""Command-line interface: ``python -m repro <command>``.

Every command is a thin shell over :mod:`repro.api`: it builds a
schema-versioned request, hands it to a :class:`~repro.api.Session`,
and prints the report — either rendered (the report's own ``render``)
or as the serialized JSON artifact (``--json``), which ``repro
report`` can later pretty-print or diff. Choice lists come from the
registries, so new variants/models show up here without CLI edits.

Commands:

* ``analyze FILE``     — run the fence-placement pipeline on a mini-C file
* ``check FILE``       — exhaustively model-check SC vs a weak model
  (``--model x86-tso|pso``), unfenced and with each variant's fences
* ``simulate FILE``    — run the timed TSO simulator and report cycles
* ``lint PROGRAM...``  — static DRF race detection plus fence-hygiene
  lint passes, each race candidate audited against the SC explorer
  (``--fail-on`` severity gates the exit code)
* ``experiments``      — regenerate the paper's tables and figures
* ``batch``            — analyze a {program × variant × model} matrix in
  parallel on the batch engine
* ``fuzz``             — differential fence-validation fuzzing: generate
  seeded programs, model-check every detection variant's placement
  against SC, and shrink any soundness counterexample
* ``models``           — list the memory-model registry (key, display,
  checkable, arch backend)
* ``report FILE``      — pretty-print or diff any serialized report
* ``serve``            — long-lived JSON-lines analysis service: with
  ``--workers N`` a sharded multi-process cluster (consistent-hash
  routing, shared artifact store, backpressure + deadlines), with
  ``--workers 0`` the single-process threaded daemon, with ``--stdio``
  a one-client subprocess loop — all answering byte-identical reports
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path

from repro.api import (
    AnalyzeRequest,
    BatchRequest,
    CheckRequest,
    FuzzRequest,
    LintRequest,
    ProgramSpec,
    SchemaError,
    Session,
    SimulateRequest,
    diff_payloads,
    load_report,
)
from repro.arch import backend_keys, get_backend
from repro.registry import (
    MODELS,
    model_keys,
    pipeline_variant_keys,
    weak_model_keys,
)


def _resolve_model(args: argparse.Namespace, fallback: str = "x86-tso") -> str:
    """``--model`` if given; else the ``--arch`` backend's native model
    (``--arch power`` alone analyzes under the POWER model); else the
    historical default."""
    if args.model is not None:
        return args.model
    if getattr(args, "arch", None) is not None:
        return get_backend(args.arch).model_key
    return fallback


@contextlib.contextmanager
def _tracing(path: str | None):
    """Span-trace the wrapped command and write a Chrome ``trace_event``
    file (viewable in ``chrome://tracing`` / Perfetto) on the way out.
    No-op when ``path`` is None — the disabled fast path costs one
    global read per span site."""
    if path is None:
        yield
        return
    from repro.obs import trace as obs_trace

    tracer = obs_trace.enable()
    try:
        with obs_trace.request_scope():
            yield
    finally:
        obs_trace.disable()
        obs_trace.export_chrome(path, tracer.events())
        print(f"trace written to {path}", file=sys.stderr)


def cmd_analyze(args: argparse.Namespace) -> int:
    with _tracing(args.trace):
        session = Session()
        report = session.analyze(
            AnalyzeRequest(
                program=ProgramSpec.file(args.file),
                variant=args.variant,
                model=_resolve_model(args),
                interprocedural=args.interprocedural,
                annotations=args.annotations,
                emit_ir=args.emit_ir,
                arch=args.arch,
                synthesis=args.synthesis,
            )
        )
    print(report.to_json() if args.json else report.render())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    # The request is the wire artifact: it carries the full
    # configuration, so the session stays at defaults.
    try:
        with _tracing(args.trace):
            report = Session().check(
                CheckRequest(
                    program=ProgramSpec.file(args.file),
                    model=_resolve_model(args),
                    max_states=args.max_states,
                    arch=args.arch,
                    synthesis=args.synthesis,
                )
            )
    except ValueError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return report.exit_code


def cmd_simulate(args: argparse.Namespace) -> int:
    report = Session().simulate(
        SimulateRequest(
            program=ProgramSpec.file(args.file),
            placement=args.variant,
            model=_resolve_model(args),
            observe_globals=tuple(args.globals),
            arch=args.arch,
            synthesis=args.synthesis,
        )
    )
    print(report.to_json() if args.json else report.render())
    return 0


def _lint_spec(token: str, manual_fences: bool) -> ProgramSpec:
    """Resolve a lint target: an existing file path, a corpus program
    name, or a litmus test name — in that order."""
    import dataclasses

    from repro.memmodel.litmus import LITMUS_TESTS
    from repro.programs.registry import all_programs

    if Path(token).is_file():
        spec = ProgramSpec.file(token)
    elif token in all_programs():
        spec = ProgramSpec.corpus(token)
    elif token in LITMUS_TESTS:
        spec = ProgramSpec.litmus(token)
    else:
        known = ", ".join(sorted(set(all_programs()) | set(LITMUS_TESTS)))
        raise KeyError(
            f"{token!r} is neither a file, a corpus program, nor a litmus "
            f"test; known programs: {known}"
        )
    if manual_fences:
        spec = dataclasses.replace(spec, manual_fences=True)
    return spec


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    session = Session()
    reports = []
    exit_code = 0
    try:
        for token in args.programs:
            spec = _lint_spec(token, args.manual_fences)
            report = session.lint(
                LintRequest(
                    program=spec,
                    variant=args.variant,
                    model=_resolve_model(args),
                    arch=args.arch,
                    passes=tuple(args.passes),
                    confirm=not args.no_confirm,
                    max_traces=args.max_traces,
                    max_actions=args.max_actions,
                    fail_on=args.fail_on,
                    stats=args.stats,
                )
            )
            reports.append(report)
            exit_code = max(exit_code, report.exit_code)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    if args.json:
        if len(reports) == 1:
            print(reports[0].to_json())
        else:
            print(json.dumps(
                [r.to_payload() for r in reports], indent=2, sort_keys=True
            ))
    else:
        print("\n\n".join(r.render() for r in reports))
    return exit_code


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import run_all
    from repro.programs import all_programs

    programs = all_programs()
    if args.quick:
        keep = ("fft", "water-nsquared", "raytrace", "matrix")
        programs = {k: programs[k] for k in keep}
    print(
        run_all(
            programs, max_workers=args.jobs, parallel=not args.serial
        ).render()
    )
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    session = Session(
        jobs=args.jobs, parallel=not args.serial, cache_dir=args.cache_dir
    )
    programs = () if args.programs == ["all"] else tuple(args.programs)
    variants = (
        tuple(sorted(pipeline_variant_keys()))
        if args.variants == ["all"]
        else tuple(args.variants)
    )
    models = (
        tuple(sorted(model_keys()))
        if args.models == ["all"]
        else tuple(args.models)
    )
    try:
        with _tracing(args.trace):
            report = session.batch(
                BatchRequest(programs=programs, variants=variants,
                             models=models, stats=args.stats, arch=args.arch,
                             synthesis=args.synthesis)
            )
    except KeyError as exc:
        print(exc.args[0])
        return 2
    print(report.to_json() if args.json else report.render())
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    """List the memory-model registry, so backend-registered models are
    discoverable without reading source."""
    from repro.util.text import format_table

    rows = []
    for key, entry in MODELS.items():
        rows.append(
            [
                key,
                entry.display,
                "yes" if entry.checkable else
                ("reference" if entry.is_reference else "no"),
                entry.arch or "-",
                entry.description,
            ]
        )
    parts = [
        format_table(
            ["key", "display", "checkable", "arch", "description"],
            rows,
            title=f"{len(rows)} registered memory models",
        )
    ]
    for arch_key in sorted(backend_keys()):
        backend = get_backend(arch_key)
        flavor_rows = [
            [
                flavor.name,
                flavor.cost,
                "/".join(kind.value for kind in sorted(
                    flavor.kills, key=lambda k: k.value
                )),
                flavor.description,
            ]
            for flavor in backend.flavors
        ]
        parts.append(
            format_table(
                ["flavor", "cost", "kills", "description"],
                flavor_rows,
                title=f"{backend.display} ({arch_key}) fence flavors",
            )
        )
    print("\n\n".join(parts))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.registry import detection_variant_keys

    session = Session(jobs=args.jobs, parallel=not args.serial)
    shapes = () if args.shapes == ["all"] else tuple(args.shapes)
    if args.variants == ["trusted"]:
        variants: tuple[str, ...] = ()
    elif args.variants == ["all"]:
        variants = detection_variant_keys()
    else:
        variants = tuple(args.variants)
    try:
        report = session.fuzz(
            FuzzRequest(
                seeds=args.seeds,
                shapes=shapes,
                variants=variants,
                models=tuple(args.models),
                budget=args.budget,
                shrink=not args.no_shrink,
                max_states=args.max_states,
            )
        )
    except KeyError as exc:
        print(exc.args[0])
        return 2

    print(report.to_json() if args.json else report.render())

    # Broken or unfinished cases must never read as "no violations":
    # a fuzzer whose every case errors out or blows the state bound
    # would otherwise green-light the CI soundness gate vacuously.
    problems = report.problem_count
    if problems:
        print(
            f"{problems} case(s) errored or exceeded --max-states; "
            "soundness not established for them",
            file=sys.stderr,
        )
    found = len(report.violations)
    if args.expect_violations:
        if found == 0:
            print("expected at least one violation; found none", file=sys.stderr)
            return 1
        return 0 if problems == 0 else 1
    return 0 if found == 0 and problems == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import json
    import os
    import signal
    import threading

    session_config = {
        "jobs": args.jobs,
        "parallel": not args.serial,
        "max_states": args.max_states,
        "cache_dir": args.cache_dir,
        "query_cache_dir": args.query_cache_dir,
    }
    if args.slow_query is not None:
        from repro.obs import trace as obs_trace

        obs_trace.SLOW_QUERIES.threshold = args.slow_query
    if args.stdio:
        from repro.serve import serve_stdio

        with _tracing(args.trace):
            return serve_stdio(Session(**session_config))

    workers = args.workers
    if workers is None:
        workers = os.cpu_count() or 1

    if workers > 0:
        import asyncio

        from repro.cluster import ClusterConfig, ClusterServer

        config = ClusterConfig(
            workers=workers,
            queue_limit=args.queue_limit,
            request_timeout=args.request_timeout or None,
            drain_timeout=args.drain_timeout,
            artifact_dir=args.query_cache_dir,
            session=session_config,
            trace=args.trace is not None,
            slow_query=args.slow_query,
        )
        cluster = ClusterServer(host=args.host, port=args.port, config=config)

        def announce(server) -> None:
            # The announcement is itself a protocol line, so scripted
            # clients read the ephemeral port without parsing prose.
            print(
                json.dumps(
                    {
                        "ok": True,
                        "serving": {
                            "host": server.host,
                            "port": server.port,
                            "workers": workers,
                        },
                    },
                    sort_keys=True,
                ),
                flush=True,
            )

        with _tracing(args.trace):
            try:
                return asyncio.run(
                    cluster.run(on_ready=announce, install_signals=True)
                )
            except KeyboardInterrupt:  # pragma: no cover - signal race
                return 0

    from repro.serve import ReproServer

    if args.trace is not None:
        from repro.obs import trace as obs_trace

        obs_trace.enable()
    server = ReproServer(
        Session(**session_config), host=args.host, port=args.port
    )
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: server.request_drain())
    print(
        json.dumps(
            {
                "ok": True,
                "serving": {
                    "host": server.host,
                    "port": server.port,
                    "workers": 0,
                },
            },
            sort_keys=True,
        ),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - pre-handler race
        server.request_drain()
    finally:
        # In-flight requests finish answering (bounded) before exit 0.
        server.drain(args.drain_timeout)
        server.close()
        if args.trace is not None:
            from repro.obs import trace as obs_trace

            tracer = obs_trace.disable()
            if tracer is not None:
                obs_trace.export_chrome(args.trace, tracer.events())
                print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import top as obs_top

    if args.obs_command == "top":
        return obs_top.run_top(
            args.host, args.port, interval=args.interval, once=args.once
        )
    return obs_top.run_metrics(args.host, args.port, as_json=args.json)


def _read_report(path: str):
    text = sys.stdin.read() if path == "-" else Path(path).read_text(
        encoding="utf-8"
    )
    return load_report(text)


def cmd_report(args: argparse.Namespace) -> int:
    try:
        report = _read_report(args.file)
        other = _read_report(args.diff) if args.diff else None
    except (SchemaError, KeyError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except OSError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if other is None:
        print(report.to_json() if args.json else report.render())
        return 0
    if type(other) is not type(report):
        print(
            f"cannot diff {report.KIND} against {other.KIND}", file=sys.stderr
        )
        return 2
    lines = diff_payloads(report.to_payload(), other.to_payload())
    if not lines:
        print("reports are identical")
        return 0
    print("\n".join(lines))
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fence placement for legacy DRF programs (PPoPP'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run the fence-placement pipeline")
    p.add_argument("file")
    p.add_argument("--variant", choices=sorted(pipeline_variant_keys()),
                   default="control")
    p.add_argument("--model", choices=sorted(model_keys()), default=None,
                   help="memory model (default: x86-tso, or the --arch "
                        "backend's native model)")
    p.add_argument("--arch", choices=sorted(backend_keys()), default=None,
                   help="arch backend for flavored fence lowering "
                        "(adds per-flavor counts and cycle cost)")
    p.add_argument("--synthesis", choices=["greedy", "optimal"],
                   default="greedy",
                   help="fence synthesis strategy: the paper's greedy "
                        "count-minimizer or min-cost optimal (needs "
                        "--arch to differ)")
    p.add_argument("--interprocedural", action="store_true",
                   help="use the whole-program acquire fixpoint")
    p.add_argument("--annotations", action="store_true",
                   help="also print C11-style annotation suggestions")
    p.add_argument("--emit-ir", action="store_true",
                   help="insert the fences and dump the final IR")
    p.add_argument("--json", action="store_true",
                   help="emit the serialized report instead of the table")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="span-trace this run and write a Chrome "
                        "trace_event JSON file (chrome://tracing, Perfetto)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("check", help="model-check SC vs a weak memory model")
    p.add_argument("file")
    p.add_argument("--model", choices=sorted(weak_model_keys()),
                   default=None,
                   help="weak model to difference against SC (default: "
                        "x86-tso, or the --arch backend's native model); "
                        "non-checkable models (sc, rmo) are excluded")
    p.add_argument("--arch", choices=sorted(backend_keys()), default=None,
                   help="arch backend lowering each variant's placement "
                        "before exploration (default: the model's own)")
    p.add_argument("--synthesis", choices=["greedy", "optimal"],
                   default="greedy",
                   help="fence synthesis strategy the checked placements "
                        "use (optimal differs only on flavored backends)")
    p.add_argument("--max-states", type=int, default=1_000_000)
    p.add_argument("--json", action="store_true",
                   help="emit the serialized report instead of text")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="span-trace this run and write a Chrome "
                        "trace_event JSON file (chrome://tracing, Perfetto)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("simulate", help="run the timed TSO simulator")
    p.add_argument("file")
    p.add_argument(
        "--variant",
        choices=sorted(pipeline_variant_keys()) + ["manual"],
        default="control",
    )
    p.add_argument("--model", choices=sorted(model_keys()), default=None,
                   help="memory model driving fence placement "
                        "(the timed machine itself is TSO; default: "
                        "x86-tso, or the --arch backend's native model)")
    p.add_argument("--arch", choices=sorted(backend_keys()), default=None,
                   help="arch backend: placements lower to its flavors "
                        "and fences are priced with its cost model")
    p.add_argument("--synthesis", choices=["greedy", "optimal"],
                   default="greedy",
                   help="fence synthesis strategy for the simulated "
                        "placement")
    p.add_argument("--globals", nargs="*", default=[],
                   help="global variables to print after the run")
    p.add_argument("--json", action="store_true",
                   help="emit the serialized report instead of text")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "lint",
        help="static DRF race detection and lint passes, explorer-audited",
    )
    p.add_argument("programs", nargs="+", metavar="PROGRAM",
                   help="mini-C file path, corpus program name, or litmus "
                        "test name (any mix; each is linted separately)")
    p.add_argument("--variant", default="address+control",
                   help="detection variant whose sync reads refine the "
                        "race candidates (default: address+control)")
    p.add_argument("--model", choices=sorted(model_keys()), default=None,
                   help="memory model for the fence-hygiene passes "
                        "(default: x86-tso, or the --arch backend's "
                        "native model)")
    p.add_argument("--arch", choices=sorted(backend_keys()), default=None,
                   help="arch backend resolving fence flavors "
                        "(enables the weak-flavor pass)")
    p.add_argument("--passes", nargs="+", default=[],
                   help="lint passes to run (default: all registered)")
    p.add_argument("--fail-on", choices=["note", "warning", "error", "never"],
                   default="error",
                   help="lowest severity that fails the exit code "
                        "(default: error)")
    p.add_argument("--no-confirm", action="store_true",
                   help="skip the explorer audit of race candidates")
    p.add_argument("--max-traces", type=int, default=400,
                   help="SC interleavings to search for witnesses")
    p.add_argument("--max-actions", type=int, default=400,
                   help="memory actions per searched interleaving")
    p.add_argument("--manual-fences", action="store_true",
                   help="keep the programs' manual fences (lint them too)")
    p.add_argument("--stats", action="store_true",
                   help="include analysis-cache hit/miss counters")
    p.add_argument("--json", action="store_true",
                   help="emit serialized report(s) instead of text")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("experiments", help="regenerate the paper's evaluation")
    p.add_argument("--quick", action="store_true",
                   help="4-program subset instead of all 17")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count)")
    p.add_argument("--serial", action="store_true",
                   help="run the sweep serially (deterministic fallback)")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "batch", help="analyze a program × variant × model matrix in parallel"
    )
    p.add_argument("--programs", nargs="+", default=["all"],
                   help="registry program names, or 'all' (default)")
    p.add_argument("--variants", nargs="+", default=["all"],
                   help="pipeline variants "
                        f"({', '.join(sorted(pipeline_variant_keys()))}), "
                        "or 'all' (default)")
    p.add_argument("--models", nargs="+", default=["x86-tso"],
                   help=f"memory models ({', '.join(sorted(model_keys()))}), "
                        "or 'all'")
    p.add_argument("--arch", choices=sorted(backend_keys()), default=None,
                   help="arch backend overriding each model's default "
                        "for flavored-lowering costs")
    p.add_argument("--synthesis", choices=["greedy", "optimal"],
                   default="greedy",
                   help="strategy whose cost fills each cell's fence_cost "
                        "(greedy and optimal costs are both reported)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count)")
    p.add_argument("--serial", action="store_true",
                   help="run serially (deterministic fallback)")
    p.add_argument("--json", action="store_true",
                   help="emit the serialized report instead of a table")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the content-keyed result cache")
    p.add_argument("--stats", action="store_true",
                   help="include aggregated analysis-cache hit/miss "
                        "counters in the report")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="span-trace this run and write a Chrome "
                        "trace_event JSON file (chrome://tracing, Perfetto)")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "fuzz",
        help="differential fence-validation fuzzing (soundness oracle)",
    )
    p.add_argument("--seeds", type=int, default=16,
                   help="number of seeds per shape (default 16)")
    p.add_argument("--budget", type=float, default=None,
                   help="wall-clock budget in seconds; stops dispatching "
                        "new cases once exceeded")
    p.add_argument("--shapes", nargs="+", default=["all"],
                   help="scaffold shapes, or 'all' (default)")
    p.add_argument("--variants", nargs="+", default=["trusted"],
                   help="detection variants to validate: 'trusted' "
                        "(address+control, pensieve — the default), 'all', "
                        "or an explicit list incl. the deliberately-weak "
                        "'vanilla' and 'control'")
    p.add_argument("--models", nargs="+", default=["x86-tso"],
                   choices=sorted(weak_model_keys()),
                   help="weak machine models to explore "
                        f"({', '.join(sorted(weak_model_keys()))}); "
                        "non-checkable models (sc, rmo) are excluded")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count)")
    p.add_argument("--serial", action="store_true",
                   help="run serially (deterministic fallback)")
    p.add_argument("--max-states", type=int, default=1_000_000,
                   help="per-exploration state bound")
    p.add_argument("--no-shrink", action="store_true",
                   help="report violations without minimizing them")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable JSON report")
    p.add_argument("--expect-violations", action="store_true",
                   help="invert the exit code: succeed only if at least "
                        "one violation is found (CI oracle self-test)")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="long-lived JSON-lines analysis daemon (socket or stdio)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port; 0 (default) picks an ephemeral port, "
                        "announced as the first stdout line")
    p.add_argument("--stdio", action="store_true",
                   help="serve a single client over stdin/stdout instead "
                        "of a socket (for subprocess embedding)")
    p.add_argument("--workers", type=int, default=None,
                   help="analysis worker processes: N>0 runs the sharded "
                        "multi-process cluster, 0 the single-process "
                        "threaded daemon (default: the CPU count)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="max outstanding requests per worker before new "
                        "ones are refused with an 'overloaded' error")
    p.add_argument("--request-timeout", type=float, default=300.0,
                   help="per-request deadline in seconds; 0 disables")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="how long graceful shutdown waits for in-flight "
                        "requests before force-closing")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for batch/fuzz requests")
    p.add_argument("--serial", action="store_true",
                   help="run batch/fuzz requests serially")
    p.add_argument("--max-states", type=int, default=1_000_000,
                   help="default per-exploration state bound")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the batch result cache")
    p.add_argument("--query-cache-dir", default=None,
                   help="directory for the persistent query cache "
                        "(fact results keyed by content fingerprint)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="span-trace the daemon (workers included on the "
                        "cluster path) and write a Chrome trace_event "
                        "JSON file at shutdown")
    p.add_argument("--slow-query", type=float, default=None, metavar="SECONDS",
                   help="log query evaluations at or over this many "
                        "seconds (query, key, input fingerprint); the log "
                        "tail is served by the 'metrics' op")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "models", help="list the memory-model registry"
    )
    p.set_defaults(func=cmd_models)

    p = sub.add_parser(
        "obs",
        help="observability views over a running serve daemon or cluster",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p_top = obs_sub.add_parser(
        "top", help="live per-op latency / per-worker / slow-query view"
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, required=True)
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="refresh period in seconds (default 2)")
    p_top.add_argument("--once", action="store_true",
                       help="render one frame and exit (for scripting)")
    p_top.set_defaults(func=cmd_obs)
    p_metrics = obs_sub.add_parser(
        "metrics", help="dump one metrics exposition and exit"
    )
    p_metrics.add_argument("--host", default="127.0.0.1")
    p_metrics.add_argument("--port", type=int, required=True)
    p_metrics.add_argument("--json", action="store_true",
                           help="emit the JSON payload instead of the "
                                "Prometheus text format")
    p_metrics.set_defaults(func=cmd_obs)

    p = sub.add_parser(
        "report", help="pretty-print or diff a serialized report"
    )
    p.add_argument("file", help="report JSON file, or '-' for stdin")
    p.add_argument("--diff", default=None,
                   help="second report to diff against (exit 1 on drift)")
    p.add_argument("--json", action="store_true",
                   help="re-emit normalized JSON instead of rendering")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
