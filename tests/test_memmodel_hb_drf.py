"""Unit tests for happens-before, race detection, and DRF checking."""

from repro.analysis.escape import EscapeInfo
from repro.core.signatures import Variant, detect_acquires
from repro.frontend import compile_source
from repro.memmodel.drf import check_drf, check_drf_with_detected_acquires
from repro.memmodel.hb import HappensBefore, all_sync, sync_from_instructions
from repro.memmodel.litmus import LITMUS_TESTS, sync_marking_for
from repro.memmodel.sc import enumerate_sc_traces


def _traces(name: str, **kw):
    return enumerate_sc_traces(LITMUS_TESTS[name].compile(), **kw)


def test_program_order_is_hb():
    trace = _traces("sb")[0]
    hb = HappensBefore(trace, all_sync)
    same_thread = [
        (i, j)
        for i, a in enumerate(trace.actions)
        for j, b in enumerate(trace.actions)
        if i < j and a.tid == b.tid
    ]
    for i, j in same_thread:
        assert hb.happens_before(i, j)


def test_hb_is_forward_only():
    trace = _traces("sb")[0]
    hb = HappensBefore(trace, all_sync)
    for i in range(len(trace.actions)):
        for j in range(i):
            assert not hb.happens_before(i, j)
        assert not hb.happens_before(i, i)


def test_sync_write_read_edge():
    # With everything sync, a cross-thread write->read same-loc pair is hb.
    for trace in _traces("mp", max_traces=20):
        hb = HappensBefore(trace, all_sync)
        for i, w in enumerate(trace.actions):
            if not w.is_write:
                continue
            for j in range(i + 1, len(trace.actions)):
                r = trace.actions[j]
                if not r.is_write and r.addr == w.addr and r.tid != w.tid:
                    assert hb.happens_before(i, j)


def test_mp_race_free_under_intended_marking():
    test = LITMUS_TESTS["mp"]
    program = test.compile()
    report = check_drf(program, sync_marking_for(test, program), max_traces=300)
    assert report.is_race_free


def test_sb_races_under_intended_marking():
    test = LITMUS_TESTS["sb"]
    program = test.compile()
    report = check_drf(program, sync_marking_for(test, program))
    assert not report.is_race_free
    addrs = {r.first.addr for r in report.races}
    assert len(addrs) >= 1


def test_mp_stale_has_data_race():
    test = LITMUS_TESTS["mp-stale"]
    program = test.compile()
    report = check_drf(program, sync_marking_for(test, program))
    assert not report.is_race_free


def test_all_litmus_wellsync_flags_match():
    for name, test in LITMUS_TESTS.items():
        program = test.compile()
        report = check_drf(
            program, sync_marking_for(test, program), max_traces=300
        )
        assert report.is_race_free == test.well_synchronized, name


def test_everything_sync_is_race_free():
    program = LITMUS_TESTS["sb"].compile()
    report = check_drf(program, all_sync)
    assert report.is_race_free


def test_detected_acquires_make_mp_drf():
    # The paper's marking (detected acquires + all escaping writes)
    # must be sufficient for well-synchronized programs.
    program = LITMUS_TESTS["mp"].compile()
    sync_reads = []
    for func in program.functions.values():
        sync_reads.extend(detect_acquires(func, Variant.CONTROL).sync_reads)
    report = check_drf_with_detected_acquires(program, sync_reads, max_traces=300)
    assert report.is_race_free


def test_detected_acquires_make_dekker_drf():
    program = LITMUS_TESTS["dekker"].compile()
    sync_reads = []
    for func in program.functions.values():
        sync_reads.extend(detect_acquires(func, Variant.CONTROL).sync_reads)
    report = check_drf_with_detected_acquires(program, sync_reads)
    assert report.is_race_free


def test_pensieve_marking_trivially_drf():
    # Every escaping access sync => no data accesses left to race.
    program = LITMUS_TESTS["sb"].compile()
    sync = []
    for func in program.functions.values():
        esc = EscapeInfo(func)
        sync.extend(esc.escaping)
    report = check_drf(program, sync_from_instructions(sync))
    assert report.is_race_free


def test_race_dedup_is_static():
    # the same static pair racing in many traces is reported once
    test = LITMUS_TESTS["sb"]
    program = test.compile()
    report = check_drf(program, sync_marking_for(test, program))
    keys = {
        (id(r.first.inst), id(r.second.inst), r.first.addr) for r in report.races
    }
    assert len(keys) == len(report.races)


def test_report_completeness_flag():
    test = LITMUS_TESTS["mp"]
    program = test.compile()
    # the spin loop admits unboundedly many traces: bound must trip
    report = check_drf(
        program, sync_marking_for(test, program), max_traces=10
    )
    assert report.traces_checked == 10
    assert not report.complete
