"""Regenerates the Fig. 2 worked example (5 fences -> 2 after pruning)."""

from repro.experiments import fig2_example


def test_fig2_worked_example(benchmark, report_sink):
    result = benchmark(fig2_example.run)
    assert result.matches_paper
    assert result.delay_set_fences == 5
    assert result.pruned_fences == 2
    report_sink["fig2"] = fig2_example.render(result)
