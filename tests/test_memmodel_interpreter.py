"""Unit tests for the IR interpreter machinery."""

import pytest

from repro.frontend import compile_source
from repro.memmodel.interpreter import (
    ExecutionError,
    GlobalLayout,
    ThreadExecutor,
    _cdiv,
    _cmod,
    stack_range,
)


def _run_single(src: str, max_steps: int = 100_000):
    """Run a single-threaded program to completion under trivial memory."""
    program = compile_source(src, "t")
    executor = ThreadExecutor(program)
    memory = executor.layout.initial_memory()
    threads = executor.start_all()
    assert len(threads) == 1
    ts = threads[0]
    while True:
        pending = executor.next_action(ts, max_steps)
        if pending is None:
            break
        if pending.kind == "load":
            executor.commit(ts, pending, memory.get(pending.addr, 0))
        elif pending.kind == "store":
            memory[pending.addr] = pending.value
            executor.commit(ts, pending)
        elif pending.kind == "rmw":
            old = memory.get(pending.addr, 0)
            result, new = pending.rmw_result(old)
            if new is not None:
                memory[pending.addr] = new
            executor.commit(ts, pending, result)
        else:
            executor.commit(ts, pending)
    return executor.layout, memory, ts


def test_cdiv_cmod_c_semantics():
    assert _cdiv(7, 2) == 3
    assert _cdiv(-7, 2) == -3  # truncation toward zero, not floor
    assert _cmod(-7, 2) == -1
    assert _cdiv(7, -2) == -3
    with pytest.raises(ExecutionError):
        _cdiv(1, 0)
    with pytest.raises(ExecutionError):
        _cmod(1, 0)


def test_global_layout_addresses_disjoint():
    program = compile_source("global a[4]; global b; fn f(t) { } thread f(0);", "t")
    layout = GlobalLayout(program)
    a, b = layout.base["a"], layout.base["b"]
    assert b == a + 4
    assert layout.is_global(a) and layout.is_global(b)
    assert not layout.is_global(stack_range(0)[0])


def test_layout_symbolic_init():
    program = compile_source("global z; global p = &z; fn f(t) { } thread f(0);", "t")
    layout = GlobalLayout(program)
    memory = layout.initial_memory()
    assert memory[layout.base["p"]] == layout.base["z"]


def test_layout_name_of():
    program = compile_source("global a[2]; global b; fn f(t) { } thread f(0);", "t")
    layout = GlobalLayout(program)
    assert layout.name_of(layout.base["a"] + 1) == "a[1]"
    assert layout.name_of(layout.base["b"]) == "b"
    assert layout.name_of(12345) is None


def test_arithmetic_program():
    src = """
    global out[6];
    fn f(t) {
      out[0] = 7 / 2;
      out[1] = 7 % 3;
      out[2] = 1 << 4;
      out[3] = (5 ^ 3) & 6;
      out[4] = -4 + 2;
      out[5] = !0 + !5;
    }
    thread f(0);
    """
    layout, memory, _ = _run_single(src)
    values = [memory[layout.base["out"] + i] for i in range(6)]
    assert values == [3, 1, 16, 6, -2, 1]


def test_comparisons_produce_01():
    src = """
    global out[4];
    fn f(t) {
      out[0] = 3 < 4;
      out[1] = 3 >= 4;
      out[2] = 3 == 3;
      out[3] = 3 != 3;
    }
    thread f(0);
    """
    layout, memory, _ = _run_single(src)
    assert [memory[layout.base["out"] + i] for i in range(4)] == [1, 0, 1, 0]


def test_call_and_return_value():
    src = """
    global out;
    fn add(a, b) { return a + b; }
    fn f(t) { out = add(3, 4); }
    thread f(0);
    """
    layout, memory, _ = _run_single(src)
    assert memory[layout.base["out"]] == 7


def test_recursion_with_stack_reclaim():
    src = """
    global out;
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn f(t) { out = fib(10); }
    thread f(0);
    """
    layout, memory, ts = _run_single(src)
    assert memory[layout.base["out"]] == 55
    # All frames popped; local memory fully reclaimed.
    assert not ts.frames
    assert not ts.local_mem


def test_observations_recorded_in_order():
    src = """
    fn f(t) { observe("a", 1); observe("b", 2); }
    thread f(0);
    """
    _, _, ts = _run_single(src)
    assert ts.observations == (("a", 1), ("b", 2))


def test_local_accesses_are_invisible():
    src = "fn f(t) { local a = 1; local b = a + 1; } thread f(0);"
    program = compile_source(src, "t")
    executor = ThreadExecutor(program)
    ts = executor.start_all()[0]
    assert executor.next_action(ts) is None  # no visible action at all
    assert ts.done


def test_max_steps_guard():
    src = "global g; fn f(t) { while (1) { local a = 1; } } thread f(0);"
    program = compile_source(src, "t")
    executor = ThreadExecutor(program)
    ts = executor.start_all()[0]
    with pytest.raises(ExecutionError, match="exceeded"):
        executor.next_action(ts, max_steps=500)


def test_rmw_semantics():
    src = """
    global x = 5;
    global out[4];
    fn f(t) {
      out[0] = cas(&x, 5, 9);   // succeeds: returns old 5
      out[1] = cas(&x, 5, 7);   // fails: x is 9, returns 9
      out[2] = xchg(&x, 1);     // returns 9
      out[3] = fadd(&x, 10);    // returns 1, x becomes 11
    }
    thread f(0);
    """
    layout, memory, _ = _run_single(src)
    assert [memory[layout.base["out"] + i] for i in range(4)] == [5, 9, 9, 1]
    assert memory[layout.base["x"]] == 11


def test_thread_state_clone_independent():
    program = compile_source("global g; fn f(t) { g = 1; g = 2; } thread f(0);", "t")
    executor = ThreadExecutor(program)
    ts = executor.start_all()[0]
    pending = executor.next_action(ts)
    clone = ts.clone()
    executor.commit(ts, pending)
    # clone still points at the first store
    assert clone.key() != ts.key()


def test_state_key_stable_under_clone():
    program = compile_source("global g; fn f(t) { g = 1; } thread f(0);", "t")
    executor = ThreadExecutor(program)
    ts = executor.start_all()[0]
    assert ts.key() == ts.clone().key()


def test_unknown_call_raises():
    from repro.ir import IRBuilder, Program

    p = Program("p")
    b = IRBuilder("f", ["t"])
    b.new_block("entry")
    b.call("ghost", [])
    p.add_function(b.build())
    p.add_thread("f", [0])
    p.finalize()
    executor = ThreadExecutor(p)
    ts = executor.start_all()[0]
    with pytest.raises(ExecutionError, match="unknown function"):
        executor.next_action(ts)
