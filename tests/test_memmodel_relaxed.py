"""Tests for the ARM/POWER relaxed explorers (repro.memmodel.relaxed).

The flavor-semantics tests are the load-bearing ones: an *insufficient*
flavor (lwsync for a w->r cut, a store-only barrier for a load-side
cut) must leave the weak behaviour observable, while the sufficient
flavor kills it — that is what makes the cross-arch differential
oracle meaningful rather than vacuously strong.
"""

import pytest

from repro.frontend import compile_source
from repro.memmodel.relaxed import ARMExplorer, POWERExplorer, RelaxedExplorer
from repro.memmodel.sc import SCExplorer

MP_TEMPLATE = """
global int flag;
global int data;

fn producer(tid) {{
  data = 1;
  {producer_fence}
  flag = 1;
}}

fn consumer(tid) {{
  local r = 0;
  local f = 0;
  f = flag;
  {consumer_fence}
  r = data;
  observe("f", f);
  observe("r", r);
}}

thread producer(0);
thread consumer(1);
"""

SB_TEMPLATE = """
global int x;
global int y;

fn left(tid) {{
  local r = 0;
  x = 1;
  {fence}
  r = y;
  observe("ry", r);
}}

fn right(tid) {{
  local r = 0;
  y = 1;
  {fence}
  r = x;
  observe("rx", r);
}}

thread left(0);
thread right(1);
"""


def _obs(explorer_cls, source, name="t"):
    program = compile_source(source, name, include_manual_fences=True)
    result = explorer_cls(program, max_states=500_000).explore()
    assert result.complete
    return result.observation_sets()


def _sc_obs(source, name="t"):
    return _obs(SCExplorer, source, name)


def _mp(producer_fence="", consumer_fence=""):
    return MP_TEMPLATE.format(
        producer_fence=producer_fence, consumer_fence=consumer_fence
    )


def _restores_sc(explorer_cls, source):
    return _obs(explorer_cls, source) == _sc_obs(source)


# --- baseline relaxations ----------------------------------------------------


@pytest.mark.parametrize("explorer_cls", [ARMExplorer, POWERExplorer])
def test_mp_breaks_unfenced(explorer_cls):
    """Unlike TSO, relaxed models break message passing: the stale-read
    mechanism lets the consumer see flag=1 but data=0."""
    weak = _obs(explorer_cls, _mp())
    sc = _sc_obs(_mp())
    assert sc < weak
    stale = {(1, "f", 1), (1, "r", 0)}
    assert any(stale <= set(outcome) for outcome in weak)


@pytest.mark.parametrize("explorer_cls", [ARMExplorer, POWERExplorer])
def test_sb_breaks_unfenced(explorer_cls):
    """Store buffering (dekker's w->r shape) stays observable."""
    weak = _obs(explorer_cls, SB_TEMPLATE.format(fence=""))
    assert _sc_obs(SB_TEMPLATE.format(fence="")) < weak


@pytest.mark.parametrize("explorer_cls", [ARMExplorer, POWERExplorer])
def test_generic_full_fences_restore_sc(explorer_cls):
    assert _restores_sc(explorer_cls, _mp("fence;", "fence;"))
    assert _restores_sc(explorer_cls, SB_TEMPLATE.format(fence="fence;"))


# --- flavor semantics --------------------------------------------------------


def test_lwsync_fixes_mp_on_power():
    assert _restores_sc(POWERExplorer, _mp("fence lwsync;", "fence lwsync;"))


def test_eieio_alone_does_not_fix_mp_on_power():
    """eieio orders the producer's stores but the consumer's stale read
    survives: the load-side cut needs lwsync."""
    weak = _obs(POWERExplorer, _mp("fence eieio;", "fence eieio;"))
    assert _sc_obs(_mp()) < weak


def test_producer_eieio_plus_consumer_lwsync_fixes_mp_on_power():
    """Exactly the placement the flavored lowering emits for MP."""
    assert _restores_sc(POWERExplorer, _mp("fence eieio;", "fence lwsync;"))


def test_lwsync_does_not_fix_sb_on_power():
    """lwsync leaves w->r relaxed: dekker-style mutual exclusion still
    breaks. Only sync kills the store-buffer delay."""
    weak = _obs(POWERExplorer, SB_TEMPLATE.format(fence="fence lwsync;"))
    assert _sc_obs(SB_TEMPLATE.format(fence="")) < weak
    assert _restores_sc(POWERExplorer, SB_TEMPLATE.format(fence="fence sync;"))


def test_dmbst_does_not_fix_sb_on_arm():
    weak = _obs(ARMExplorer, SB_TEMPLATE.format(fence="fence dmbst;"))
    assert _sc_obs(SB_TEMPLATE.format(fence="")) < weak
    assert _restores_sc(ARMExplorer, SB_TEMPLATE.format(fence="fence dmb;"))


def test_foreign_flavor_acts_as_full_fence():
    """A flavor the backend does not know (cross-compiled mfence on
    ARM) conservatively gets full-fence semantics."""
    assert _restores_sc(ARMExplorer, SB_TEMPLATE.format(fence="fence mfence;"))
    assert _restores_sc(ARMExplorer, _mp("fence mfence;", "fence mfence;"))


def test_cfence_has_no_hardware_effect():
    weak = _obs(POWERExplorer, _mp("cfence;", "cfence;"))
    assert _sc_obs(_mp()) < weak


# --- coherence and RMW semantics --------------------------------------------

COHERENCE = """
global int x;

fn writer(tid) {
  x = 1;
  x = 2;
}

fn reader(tid) {
  local a = 0;
  local b = 0;
  a = x;
  b = x;
  observe("a", a);
  observe("b", b);
}

thread writer(0);
thread reader(1);
"""


@pytest.mark.parametrize("explorer_cls", [ARMExplorer, POWERExplorer])
def test_per_location_coherence(explorer_cls):
    """Same-address reads never go backwards, stale mechanism or not."""
    for outcome in _obs(explorer_cls, COHERENCE):
        values = {label: value for _tid, label, value in outcome}
        assert values["a"] <= values["b"]


RMW_SB = """
global int x;
global int y;
global int unrelated;

fn left(tid) {
  local r = 0;
  local t = 0;
  x = 1;
  t = fadd(unrelated, 1);
  r = y;
  observe("ry", r);
}

fn right(tid) {
  local r = 0;
  local t = 0;
  y = 1;
  t = fadd(unrelated, 1);
  r = x;
  observe("rx", r);
}

thread left(0);
thread right(1);
"""


@pytest.mark.parametrize("explorer_cls", [ARMExplorer, POWERExplorer])
def test_rmw_is_not_an_implicit_fence(explorer_cls):
    """Unlike x86's LOCK prefix, LL/SC atomics on relaxed models carry
    no barrier: an unrelated fadd between the store and the load does
    NOT restore SC for the store-buffering shape."""
    weak = _obs(explorer_cls, RMW_SB)
    sc = _sc_obs(RMW_SB)
    assert sc < weak


def test_relaxed_explorer_default_arch_is_arm():
    program = compile_source(_mp(), "mp")
    assert RelaxedExplorer(program).backend.key == "arm"
    assert POWERExplorer(program).backend.key == "power"
