"""Ordering pruning for legacy-DRF programs (paper Section 2.3).

Given detected acquires, keep only orderings conforming to Table I:

=====================  =======================================================
``r/w -> w_rel``       every escaping write is conservatively a release, so
                       any ordering *into a write* is kept;
``r_acq -> r/w``       any ordering *out of a detected acquire* is kept;
``w_rel -> r_acq``     sync-to-sync orderings are kept.
=====================  =======================================================

Equivalently (and this is how the paper states it): prune ``r1 -> r2``
unless ``r1`` is a detected acquire, and prune ``w -> r`` unless ``r``
is a detected acquire. Acquire status is per *instruction*: the read
half of an RMW is an acquire iff the RMW instruction was detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.machine_models import OrderKind
from repro.core.orderings import Ordering, OrderingSet
from repro.ir.instructions import Instruction
from repro.util.orderedset import OrderedSet


@dataclass
class PruneStats:
    """Counts before/after pruning, by ordering kind."""

    before: dict[OrderKind, int]
    after: dict[OrderKind, int]

    @property
    def total_before(self) -> int:
        return sum(self.before.values())

    @property
    def total_after(self) -> int:
        return sum(self.after.values())

    @property
    def is_vacuous(self) -> bool:
        """True when the function had no orderings to prune at all."""
        return self.total_before == 0

    @property
    def surviving_fraction(self) -> float:
        """Per-function fraction of orderings surviving Table-I pruning.

        A function with zero orderings survives "vacuously" and reports
        1.0 here; when averaging across functions or programs, use
        :func:`aggregate_surviving_fraction` instead, which weights by
        ordering count so vacuous functions carry no weight and cannot
        inflate the aggregate.
        """
        if self.total_before == 0:
            return 1.0
        return self.total_after / self.total_before


def aggregate_surviving_fraction(stats: Iterable[PruneStats]) -> float:
    """Ordering-count-weighted surviving fraction across functions.

    Computed as ``sum(after) / sum(before)`` — equivalent to weighting
    each function's :attr:`PruneStats.surviving_fraction` by its
    pre-prune ordering count. Chosen over skipping empty functions plus
    an unweighted mean because it also keeps tiny functions (one or two
    orderings) from dominating the average of a program whose orderings
    live in a few large functions. Returns 1.0 when nothing anywhere
    needed pruning (vacuously all survived).
    """
    before = 0
    after = 0
    for s in stats:
        before += s.total_before
        after += s.total_after
    if before == 0:
        return 1.0
    return after / before


def keep_ordering(
    ordering: Ordering, sync_reads: OrderedSet[Instruction]
) -> bool:
    """Table I check for one ordering."""
    if ordering.dst.is_write:
        return True  # r/w -> w_rel: everything into a release is kept.
    if not ordering.src.is_write:
        # r -> r: kept only out of an acquire.
        return ordering.src.inst in sync_reads
    # w -> r: kept only into an acquire (w_rel -> r_acq).
    return ordering.dst.inst in sync_reads


def prune_orderings(
    orderings: OrderingSet, sync_reads: OrderedSet[Instruction]
) -> tuple[OrderingSet, PruneStats]:
    """Apply Table I; returns the surviving orderings and statistics."""
    kept = [o for o in orderings if keep_ordering(o, sync_reads)]
    pruned_set = OrderingSet(orderings.function, kept)
    stats = PruneStats(
        before=orderings.count_by_kind(), after=pruned_set.count_by_kind()
    )
    return pruned_set, stats
