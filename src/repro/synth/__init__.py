"""Optimal min-cost fence synthesis (delay-graph min-cut + exact DP).

The greedy pipeline minimizes fence *count*; this package minimizes
fence *cost* on flavored ISAs, over the exact same per-block delay
intervals, and proves it: every plan carries the greedy cost it beats
and a min-cut certificate value. See :mod:`repro.synth.optimal` for
the solver and :mod:`repro.synth.mincut` for the pure-python Dinic
max-flow underneath.
"""

from repro.synth.mincut import FlowNetwork
from repro.synth.optimal import (
    SynthesisPlan,
    block_cut,
    synthesize_analysis,
    synthesize_plan,
)

__all__ = [
    "FlowNetwork",
    "SynthesisPlan",
    "block_cut",
    "synthesize_analysis",
    "synthesize_plan",
]
