"""PSO (partial store order) operational model exploration.

PSO relaxes TSO's ``w->w`` ordering: each thread keeps a FIFO store
buffer *per address* (same-address stores stay ordered — coherence —
but stores to different addresses drain in any order). Loads forward
from the own per-address buffer; ``mfence`` and atomic RMWs require the
entire buffer empty.

This makes message passing (paper Fig. 4) genuinely break without
fences: the flag store can drain before the data store. The pipeline
driven by the PSO machine model must therefore fence the producer side
(``w -> w_rel`` into the release), which the integration tests verify
end to end — evidence that the Table-I orderings, not just the TSO
``w->r`` subset, are doing their job.

Exploration runs through the shared DPOR core
(:mod:`repro.memmodel.explore`); per-address flushes of *different*
addresses from different threads commute unless some thread may still
access them, so the factorial drain-order blowup collapses.
"""

from __future__ import annotations

from repro.ir.instructions import FenceKind
from repro.memmodel.explore import LOCAL_FP, CoreExplorer, Transition
from repro.memmodel.interpreter import ExecutionError, ThreadState
from repro.memmodel.sc import Outcome, make_outcome
from repro.memmodel.storebuf import AddrFifoMap, fifo_get, fifo_set

# Per-thread buffer: address -> FIFO of pending values (oldest first).
PsoBuffer = AddrFifoMap

_buffer_get = fifo_get
_buffer_set = fifo_set


def _buffer_empty(buffer: PsoBuffer) -> bool:
    return not buffer


class PSOExplorer(CoreExplorer):
    """DPOR DFS over the PSO state graph (threads x per-address
    buffers). State = (memory, threads, buffers)."""

    MODEL_KEY = "pso"

    def initial_state(self) -> tuple:
        threads = tuple(self.executor.start_all())
        return (
            self.layout.initial_memory(),
            threads,
            tuple(() for _ in threads),
        )

    def threads_of(self, state: tuple) -> tuple[ThreadState, ...]:
        return state[1]

    def state_parts(self, state: tuple) -> tuple[tuple, tuple]:
        memory, _threads, buffers = state
        return tuple(sorted(memory.items())), buffers

    def buffered_addrs(self, state: tuple, tid: int) -> frozenset[int]:
        return frozenset(addr for addr, _values in state[2][tid])

    def outcome_of(self, state: tuple) -> Outcome:
        memory, threads, _buffers = state
        return make_outcome(self.layout, memory, threads, self.observe_globals)

    def check_final(self, state: tuple) -> None:
        if any(state[2]):  # pragma: no cover - flushes always enabled
            raise ExecutionError("deadlock with non-empty buffer")

    def transitions(self, state: tuple) -> list[Transition]:
        memory, threads, buffers = state
        out: list[Transition] = []

        # (a) flush the oldest entry of ANY per-address queue: this is
        # where PSO differs from TSO — each address drains
        # independently, so differently-addressed stores reorder.
        for i, buffer in enumerate(buffers):
            for addr, values in buffer:
                new_memory = dict(memory)
                new_memory[addr] = values[0]
                new_buffers = (
                    buffers[:i]
                    + (_buffer_set(buffer, addr, values[1:]),)
                    + buffers[i + 1 :]
                )
                out.append(
                    Transition(
                        ("f", i, addr),
                        i,
                        False,
                        self._addr_fp(addr, writes=True),
                        ((new_memory, threads, new_buffers),),
                    )
                )

        # (b) thread steps.
        for i, ts in enumerate(threads):
            if ts.done:
                continue
            new_threads, clone, pending = self._advance(threads, i)
            if pending is None:
                out.append(
                    Transition(
                        ("t", i), i, True, LOCAL_FP, ((memory, new_threads, buffers),)
                    )
                )
                continue
            buffer = buffers[i]
            if pending.kind == "load":
                values = _buffer_get(buffer, pending.addr)
                if values:
                    self.executor.commit(clone, pending, values[-1])
                    # Shared read for reduction purposes (see tso.py):
                    # forwarding status flips once the own queue drains.
                    fp = self._addr_fp(pending.addr, reads=True)
                else:
                    self.executor.commit(
                        clone, pending, memory.get(pending.addr, 0)
                    )
                    fp = self._addr_fp(pending.addr, reads=True)
                succ = (memory, new_threads, buffers)
            elif pending.kind == "store":
                # A release store orders every earlier store before
                # itself (the w->w obligation PSO relaxes): it waits for
                # the whole buffer to drain, then buffers normally — so
                # the release itself can still be delayed past later
                # reads (w->r stays relaxed, as on hardware).
                if (
                    getattr(pending.inst, "ordering", None) == "release"
                    and not _buffer_empty(buffer)
                ):
                    continue
                values = _buffer_get(buffer, pending.addr)
                new_buffers = (
                    buffers[:i]
                    + (_buffer_set(buffer, pending.addr, values + (pending.value,)),)
                    + buffers[i + 1 :]
                )
                self.executor.commit(clone, pending)
                fp = LOCAL_FP
                succ = (memory, new_threads, new_buffers)
            elif pending.kind == "rmw":
                if not _buffer_empty(buffer):
                    continue
                new_memory = dict(memory)
                old = new_memory.get(pending.addr, 0)
                result, new = pending.rmw_result(old)
                if new is not None:
                    new_memory[pending.addr] = new
                self.executor.commit(clone, pending, result)
                fp = self._addr_fp(pending.addr, reads=True, writes=True)
                succ = (new_memory, new_threads, buffers)
            elif pending.kind == "fence":
                if pending.fence_kind is FenceKind.FULL and not _buffer_empty(
                    buffer
                ):
                    continue
                self.executor.commit(clone, pending)
                fp = LOCAL_FP
                succ = (memory, new_threads, buffers)
            else:  # pragma: no cover
                raise ExecutionError(f"unknown action {pending.kind}")
            out.append(Transition(("t", i), i, True, fp, (succ,)))
        return out
