"""Exploration-core benchmarks: exhaustive vs reduced state counts.

Measures what the shared DPOR core (:mod:`repro.memmodel.explore`)
buys on the litmus corpus: every entry explores one program on one
model twice — once exhaustively (reduction and canonical hashing off)
and once through the default reduced path — and records both state
counts plus an outcome-agreement verdict. State counts are
deterministic (no timing lands in the artifact), so the committed
``BENCH_explore.json`` doubles as a regression gate: CI regenerates it
(freshness) and replays ``--check`` against the committed baseline,
failing when any reduced count regresses by more than 20% or a
headline dekker-/MP-class reduction falls below 10x.

Runs two ways: under pytest-benchmark like the other bench modules, or
as a script emitting the machine-readable artifact::

    PYTHONPATH=src python benchmarks/bench_explore.py --out BENCH_explore.json
    PYTHONPATH=src python benchmarks/bench_explore.py --check BENCH_explore.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.memmodel.litmus import LITMUS_TESTS  # noqa: E402
from repro.registry.models import EXPLORERS  # noqa: E402

#: (litmus program, model) cells. The scaled dekker-/MP-class entries
#: (dekker-scoreboard, mp-chain) are the headline workloads; the plain
#: litmus shapes pin the small end so a reduction pessimization shows
#: up even where the absolute counts are tiny.
WORKLOADS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("mp", ("sc", "x86-tso", "pso")),
    ("dekker", ("sc", "x86-tso", "pso")),
    ("iriw", ("x86-tso", "pso", "arm")),
    ("mp-chain", ("pso", "arm", "power")),
    ("dekker-scoreboard", ("x86-tso", "pso", "arm")),
)

#: Headline acceptance: on these cells the reduced exploration must be
#: at least MIN_HEADLINE_REDUCTION times smaller than exhaustive.
HEADLINE: tuple[tuple[str, str], ...] = (
    ("mp-chain", "pso"),
    ("mp-chain", "arm"),
    ("dekker-scoreboard", "x86-tso"),
    ("dekker-scoreboard", "pso"),
)
MIN_HEADLINE_REDUCTION = 10.0

#: --check fails when a recomputed reduced count exceeds the committed
#: baseline by more than this factor.
REGRESSION_TOLERANCE = 1.20

MAX_STATES = 3_000_000


def _explore_cell(program_name: str, model: str) -> dict:
    cls = EXPLORERS.get(model)
    test = LITMUS_TESTS[program_name]
    exhaustive = cls(
        test.compile(), max_states=MAX_STATES,
        reduction=False, canonicalize=False,
    ).explore()
    reduced = cls(test.compile(), max_states=MAX_STATES).explore()
    return {
        "program": program_name,
        "model": model,
        "exhaustive_states": exhaustive.states_explored,
        "reduced_states": reduced.states_explored,
        "reduction": round(
            exhaustive.states_explored / max(1, reduced.states_explored), 2
        ),
        "outcomes": len(reduced.outcomes),
        "agrees": (
            reduced.outcomes == exhaustive.outcomes
            and reduced.complete == exhaustive.complete
        ),
    }


def run_suite() -> dict:
    entries = [
        _explore_cell(program, model)
        for program, models in WORKLOADS
        for model in models
    ]
    by_cell = {(e["program"], e["model"]): e for e in entries}
    headline = {
        f"{program}/{model}": by_cell[(program, model)]["reduction"]
        for program, model in HEADLINE
    }
    return {
        "schema": 1,
        "max_states": MAX_STATES,
        "min_headline_reduction": MIN_HEADLINE_REDUCTION,
        "headline": headline,
        "entries": entries,
    }


def verify(report: dict) -> list[str]:
    """Internal consistency of one suite run: agreement + headline."""
    problems = []
    for e in report["entries"]:
        if not e["agrees"]:
            problems.append(
                f"{e['program']}/{e['model']}: reduced exploration "
                "disagrees with exhaustive (soundness bug)"
            )
    for cell, reduction in report["headline"].items():
        if reduction < MIN_HEADLINE_REDUCTION:
            problems.append(
                f"headline {cell}: reduction {reduction}x is below the "
                f"{MIN_HEADLINE_REDUCTION}x floor"
            )
    return problems


def check_against(baseline: dict, current: dict) -> list[str]:
    """Compare a fresh run against the committed artifact."""
    problems = verify(current)
    recorded = {
        (e["program"], e["model"]): e for e in baseline.get("entries", [])
    }
    for e in current["entries"]:
        old = recorded.get((e["program"], e["model"]))
        if old is None:
            continue  # new cell: no baseline to regress from
        limit = old["reduced_states"] * REGRESSION_TOLERANCE
        if e["reduced_states"] > limit:
            problems.append(
                f"{e['program']}/{e['model']}: reduced states "
                f"{e['reduced_states']} regressed >20% over committed "
                f"baseline {old['reduced_states']}"
            )
    return problems


# --- pytest-benchmark entry point --------------------------------------------


def test_explore_reduction(benchmark, report_sink):
    report = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert verify(report) == []
    lines = ["Exploration core, exhaustive vs reduced state counts:"]
    for e in report["entries"]:
        lines.append(
            f"  {e['program']:18s} {e['model']:8s} "
            f"{e['exhaustive_states']:8d} -> {e['reduced_states']:6d} "
            f"({e['reduction']:5.1f}x)"
        )
    report_sink["explore"] = "\n".join(lines)


# --- script entry point ------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=None,
        help="write the artifact here (e.g. BENCH_explore.json)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="re-run the suite and fail on disagreement, a headline "
        "reduction below 10x, or a >20% reduced-state regression "
        "against BASELINE",
    )
    args = parser.parse_args(argv)

    report = run_suite()
    for e in report["entries"]:
        flag = "" if e["agrees"] else "  DISAGREES"
        print(
            f"{e['program']:18s} {e['model']:8s} "
            f"{e['exhaustive_states']:8d} -> {e['reduced_states']:6d} "
            f"({e['reduction']:5.1f}x){flag}"
        )

    if args.check is not None:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        problems = check_against(baseline, report)
        if problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
            return 1
        print(f"check OK against {args.check}")

    if args.out is not None:
        problems = verify(report)
        if problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
            return 1
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
