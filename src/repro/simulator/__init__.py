"""Timed x86-TSO multicore simulator — the Fig. 10 measurement substrate."""

from repro.simulator.costmodel import DEFAULT_COSTS, FREE_FENCES, CostModel
from repro.simulator.machine import SimStats, TSOSimulator, simulate

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "FREE_FENCES",
    "SimStats",
    "TSOSimulator",
    "simulate",
]
